//! Seeded random load generation.
//!
//! The paper evaluates two loads (`ILs r1`, `ILs r2`) in which each job's
//! current is "randomly chosen" between the low (250 mA) and high (500 mA)
//! level. The exact sequences are not published, so this module generates
//! reproducible random loads from an explicit seed; the two paper loads use
//! fixed seeds (see [`crate::paper_loads`]). The same machinery supports the
//! "realistic random loads" outlook of Section 7.

use crate::{Epoch, LoadProfile, WorkloadError};

/// A small, self-contained deterministic generator (SplitMix64, Steele et
/// al.). The build environment is offline, so the crate cannot depend on
/// `rand`; SplitMix64 passes BigCrush, is trivially seedable and keeps the
/// generated paper loads (`ILs r1` / `ILs r2`) stable across platforms.
///
/// The generator is public so that other crates in the workspace (e.g.
/// property-style test suites) sample from the same stream implementation
/// instead of duplicating it.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` via rejection sampling (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_index requires a positive bound");
        let bound = bound as u64;
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return (raw % bound) as usize;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)` (53 bits of precision).
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Specification of a random intermittent load.
///
/// A generated load consists of `job_count` jobs whose current is drawn
/// uniformly at random from `currents`, each lasting `job_duration` minutes
/// and followed by an idle period of `idle_duration` minutes (omitted when
/// zero).
///
/// # Example
///
/// ```
/// use workload::random::RandomLoadSpec;
///
/// # fn main() -> Result<(), workload::WorkloadError> {
/// let spec = RandomLoadSpec::new(vec![0.25, 0.5], 1.0, 1.0, 50)?;
/// let load_a = spec.generate(42)?;
/// let load_b = spec.generate(42)?;
/// // Generation is deterministic in the seed.
/// assert_eq!(load_a, load_b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomLoadSpec {
    currents: Vec<f64>,
    job_duration: f64,
    idle_duration: f64,
    job_count: usize,
}

impl RandomLoadSpec {
    /// Creates a random-load specification.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyProfile`] if `currents` is empty or
    /// `job_count` is zero, [`WorkloadError::InvalidCurrent`] if any
    /// candidate current is negative or non-finite,
    /// [`WorkloadError::InvalidDuration`] if `job_duration` is not positive
    /// and finite or `idle_duration` is negative or non-finite.
    pub fn new(
        currents: Vec<f64>,
        job_duration: f64,
        idle_duration: f64,
        job_count: usize,
    ) -> Result<Self, WorkloadError> {
        if currents.is_empty() || job_count == 0 {
            return Err(WorkloadError::EmptyProfile);
        }
        for &current in &currents {
            if !(current.is_finite() && current >= 0.0) {
                return Err(WorkloadError::InvalidCurrent { value: current });
            }
        }
        if !(job_duration.is_finite() && job_duration > 0.0) {
            return Err(WorkloadError::InvalidDuration { value: job_duration });
        }
        if !(idle_duration.is_finite() && idle_duration >= 0.0) {
            return Err(WorkloadError::InvalidDuration { value: idle_duration });
        }
        Ok(Self { currents, job_duration, idle_duration, job_count })
    }

    /// The candidate job currents (A).
    #[must_use]
    pub fn currents(&self) -> &[f64] {
        &self.currents
    }

    /// The duration of each job (min).
    #[must_use]
    pub fn job_duration(&self) -> f64 {
        self.job_duration
    }

    /// The idle time after each job (min); zero means back-to-back jobs.
    #[must_use]
    pub fn idle_duration(&self) -> f64 {
        self.idle_duration
    }

    /// The number of jobs in a generated load.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.job_count
    }

    /// Generates a finite load profile, deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates epoch-construction errors (which cannot occur for a
    /// specification accepted by [`RandomLoadSpec::new`]).
    pub fn generate(&self, seed: u64) -> Result<LoadProfile, WorkloadError> {
        let mut rng = SplitMix64::new(seed);
        let mut epochs = Vec::with_capacity(self.job_count * 2);
        for _ in 0..self.job_count {
            let current = self.currents[rng.next_index(self.currents.len())];
            epochs.push(Epoch::job(current, self.job_duration)?);
            if self.idle_duration > 0.0 {
                epochs.push(Epoch::idle(self.idle_duration)?);
            }
        }
        LoadProfile::finite(epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_errors() {
        assert!(RandomLoadSpec::new(vec![], 1.0, 1.0, 10).is_err());
        assert!(RandomLoadSpec::new(vec![0.25], 1.0, 1.0, 0).is_err());
        assert!(RandomLoadSpec::new(vec![-0.25], 1.0, 1.0, 10).is_err());
        assert!(RandomLoadSpec::new(vec![0.25], 0.0, 1.0, 10).is_err());
        assert!(RandomLoadSpec::new(vec![0.25], 1.0, -1.0, 10).is_err());
        assert!(RandomLoadSpec::new(vec![0.25, 0.5], 1.0, 1.0, 10).is_ok());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = RandomLoadSpec::new(vec![0.25, 0.5], 1.0, 1.0, 30).unwrap();
        assert_eq!(spec.generate(1).unwrap(), spec.generate(1).unwrap());
        assert_ne!(spec.generate(1).unwrap(), spec.generate(2).unwrap());
    }

    #[test]
    fn generated_load_has_expected_shape() {
        let spec = RandomLoadSpec::new(vec![0.25, 0.5], 1.0, 1.0, 25).unwrap();
        let load = spec.generate(7).unwrap();
        assert_eq!(load.pattern().len(), 50);
        assert_eq!(load.jobs_per_pattern(), 25);
        for epoch in load.pattern().iter().filter(|e| e.is_job()) {
            assert!(epoch.current() == 0.25 || epoch.current() == 0.5);
            assert_eq!(epoch.duration(), 1.0);
        }
    }

    #[test]
    fn zero_idle_duration_omits_idle_epochs() {
        let spec = RandomLoadSpec::new(vec![0.25, 0.5], 1.0, 0.0, 10).unwrap();
        let load = spec.generate(3).unwrap();
        assert_eq!(load.pattern().len(), 10);
        assert!(load.pattern().iter().all(Epoch::is_job));
    }

    #[test]
    fn generated_jobs_use_both_levels_eventually() {
        let spec = RandomLoadSpec::new(vec![0.25, 0.5], 1.0, 1.0, 100).unwrap();
        let load = spec.generate(11).unwrap();
        let currents: Vec<f64> =
            load.pattern().iter().filter(|e| e.is_job()).map(Epoch::current).collect();
        assert!(currents.contains(&0.25));
        assert!(currents.contains(&0.5));
    }
}
