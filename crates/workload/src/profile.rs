use crate::WorkloadError;
use kibam::lifetime::Segment;

/// One epoch of a load: a period of constant current.
///
/// Following the paper's terminology (Section 4.1), a load is divided into
/// epochs; an epoch with positive current is a *job*, an epoch with zero
/// current is an *idle period*.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Epoch {
    current: f64,
    duration: f64,
}

impl Epoch {
    /// Creates an epoch with the given current (A) and duration (min).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidCurrent`] for negative or non-finite
    /// currents and [`WorkloadError::InvalidDuration`] for non-positive or
    /// non-finite durations.
    pub fn new(current: f64, duration: f64) -> Result<Self, WorkloadError> {
        if !(current.is_finite() && current >= 0.0) {
            return Err(WorkloadError::InvalidCurrent { value: current });
        }
        if !(duration.is_finite() && duration > 0.0) {
            return Err(WorkloadError::InvalidDuration { value: duration });
        }
        Ok(Self { current, duration })
    }

    /// A job epoch (positive current expected, but zero is accepted).
    ///
    /// # Errors
    ///
    /// Same as [`Epoch::new`].
    pub fn job(current: f64, duration: f64) -> Result<Self, WorkloadError> {
        Self::new(current, duration)
    }

    /// An idle epoch of the given duration.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidDuration`] for non-positive or
    /// non-finite durations.
    pub fn idle(duration: f64) -> Result<Self, WorkloadError> {
        Self::new(0.0, duration)
    }

    /// The current drawn during this epoch, in amperes.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The duration of this epoch, in minutes.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Whether this epoch is an idle period (draws no current).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        // xlint: allow(float-eq) -- idle is defined as exactly-zero current
        self.current == 0.0
    }

    /// Whether this epoch is a job (draws current).
    #[must_use]
    pub fn is_job(&self) -> bool {
        !self.is_idle()
    }

    /// The charge drawn over the epoch, in A·min.
    #[must_use]
    pub fn charge(&self) -> f64 {
        self.current * self.duration
    }

    /// Converts this epoch into a [`kibam::lifetime::Segment`].
    #[must_use]
    pub fn to_segment(&self) -> Segment {
        Segment::new(self.current, self.duration)
            // xlint: allow(panic) -- epoch invariants are a superset of segment invariants
            .expect("epoch invariants are a superset of segment invariants")
    }
}

/// A piecewise-constant load profile: a sequence of [`Epoch`]s, either finite
/// or repeating its pattern cyclically forever.
///
/// The paper's test loads repeat a small pattern (e.g. "one-minute 500 mA
/// job, one-minute idle") until the batteries are empty; such loads are
/// modelled as *cyclic* profiles. Random loads and truncated loads are
/// *finite* profiles.
///
/// # Example
///
/// ```
/// use workload::{Epoch, LoadProfile};
///
/// # fn main() -> Result<(), workload::WorkloadError> {
/// let profile = LoadProfile::cyclic(vec![
///     Epoch::job(0.5, 1.0)?,
///     Epoch::idle(1.0)?,
/// ])?;
/// assert!(profile.is_cyclic());
/// assert_eq!(profile.pattern().len(), 2);
/// // The epoch iterator is infinite for cyclic profiles.
/// assert_eq!(profile.epochs().take(5).count(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoadProfile {
    pattern: Vec<Epoch>,
    cyclic: bool,
}

impl LoadProfile {
    /// Creates a finite profile from a list of epochs.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyProfile`] if `epochs` is empty.
    pub fn finite(epochs: Vec<Epoch>) -> Result<Self, WorkloadError> {
        if epochs.is_empty() {
            return Err(WorkloadError::EmptyProfile);
        }
        Ok(Self { pattern: epochs, cyclic: false })
    }

    /// Creates a cyclic profile that repeats `pattern` forever.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyProfile`] if the pattern is empty and
    /// [`WorkloadError::IdleCycle`] if the pattern draws no charge at all
    /// (such a profile would never exercise a battery).
    pub fn cyclic(pattern: Vec<Epoch>) -> Result<Self, WorkloadError> {
        if pattern.is_empty() {
            return Err(WorkloadError::EmptyProfile);
        }
        if pattern.iter().all(Epoch::is_idle) {
            return Err(WorkloadError::IdleCycle);
        }
        Ok(Self { pattern, cyclic: true })
    }

    /// The underlying epoch pattern (one period for cyclic profiles, the
    /// whole load for finite ones).
    #[must_use]
    pub fn pattern(&self) -> &[Epoch] {
        &self.pattern
    }

    /// Whether this profile repeats its pattern forever.
    #[must_use]
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    /// Iterates over the epochs of the load. The iterator is infinite for
    /// cyclic profiles.
    #[must_use]
    pub fn epochs(&self) -> EpochIter<'_> {
        EpochIter { profile: self, index: 0 }
    }

    /// Iterates over the load as [`kibam::lifetime::Segment`]s (infinite for
    /// cyclic profiles).
    #[must_use]
    pub fn segments(&self) -> SegmentIter<'_> {
        SegmentIter { inner: self.epochs() }
    }

    /// The duration of one pattern period, in minutes.
    #[must_use]
    pub fn pattern_duration(&self) -> f64 {
        self.pattern.iter().map(Epoch::duration).sum()
    }

    /// The charge drawn by one pattern period, in A·min.
    #[must_use]
    pub fn pattern_charge(&self) -> f64 {
        self.pattern.iter().map(Epoch::charge).sum()
    }

    /// The total duration of the load, or `None` for cyclic (infinite)
    /// profiles.
    #[must_use]
    pub fn total_duration(&self) -> Option<f64> {
        (!self.cyclic).then(|| self.pattern_duration())
    }

    /// The total charge drawn by the load, or `None` for cyclic (infinite)
    /// profiles.
    #[must_use]
    pub fn total_charge(&self) -> Option<f64> {
        (!self.cyclic).then(|| self.pattern_charge())
    }

    /// The current drawn at absolute time `time` (minutes from the start of
    /// the load), or `None` if a finite load has already ended by then.
    #[must_use]
    pub fn current_at(&self, time: f64) -> Option<f64> {
        if time < 0.0 {
            return None;
        }
        let period = self.pattern_duration();
        let local = if self.cyclic {
            // Reduce into one period; guard against `period == 0` is not
            // needed because epochs have strictly positive durations.
            time % period
        } else {
            if time >= period {
                return None;
            }
            time
        };
        let mut elapsed = 0.0;
        for epoch in &self.pattern {
            elapsed += epoch.duration();
            if local < elapsed {
                return Some(epoch.current());
            }
        }
        // Floating point fell off the end of the pattern; report the last
        // epoch's current.
        self.pattern.last().map(Epoch::current)
    }

    /// Returns a finite profile containing the epochs of this load up to (at
    /// least) the given time horizon. Epochs are never split: the final epoch
    /// is included whole.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidBound`] if `horizon` is not positive
    /// and finite.
    pub fn truncate_to_duration(&self, horizon: f64) -> Result<LoadProfile, WorkloadError> {
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(WorkloadError::InvalidBound { value: horizon });
        }
        let mut epochs = Vec::new();
        let mut elapsed = 0.0;
        for epoch in self.epochs() {
            epochs.push(epoch);
            elapsed += epoch.duration();
            if elapsed >= horizon {
                break;
            }
        }
        LoadProfile::finite(epochs)
    }

    /// Returns a finite profile containing the epochs of this load until the
    /// cumulative drawn charge reaches `charge` (A·min), or the finite load
    /// ends. Useful to bound a cyclic load by the total capacity of the
    /// batteries that will serve it.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidBound`] if `charge` is not positive
    /// and finite.
    pub fn truncate_to_charge(&self, charge: f64) -> Result<LoadProfile, WorkloadError> {
        if !(charge.is_finite() && charge > 0.0) {
            return Err(WorkloadError::InvalidBound { value: charge });
        }
        let mut epochs = Vec::new();
        let mut drawn = 0.0;
        for epoch in self.epochs() {
            epochs.push(epoch);
            drawn += epoch.charge();
            if drawn >= charge {
                break;
            }
        }
        LoadProfile::finite(epochs)
    }

    /// The number of jobs (non-idle epochs) in the pattern.
    #[must_use]
    pub fn jobs_per_pattern(&self) -> usize {
        self.pattern.iter().filter(|e| e.is_job()).count()
    }
}

/// Iterator over the epochs of a [`LoadProfile`]; infinite for cyclic
/// profiles. Created by [`LoadProfile::epochs`].
#[derive(Debug, Clone)]
pub struct EpochIter<'a> {
    profile: &'a LoadProfile,
    index: usize,
}

impl Iterator for EpochIter<'_> {
    type Item = Epoch;

    fn next(&mut self) -> Option<Epoch> {
        let pattern = &self.profile.pattern;
        if self.profile.cyclic {
            let epoch = pattern[self.index % pattern.len()];
            self.index += 1;
            Some(epoch)
        } else if self.index < pattern.len() {
            let epoch = pattern[self.index];
            self.index += 1;
            Some(epoch)
        } else {
            None
        }
    }
}

/// Iterator over the load as [`Segment`]s; infinite for cyclic profiles.
/// Created by [`LoadProfile::segments`].
#[derive(Debug, Clone)]
pub struct SegmentIter<'a> {
    inner: EpochIter<'a>,
}

impl Iterator for SegmentIter<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        self.inner.next().map(|e| e.to_segment())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Epoch {
        Epoch::job(0.5, 1.0).unwrap()
    }

    fn idle() -> Epoch {
        Epoch::idle(1.0).unwrap()
    }

    #[test]
    fn epoch_validation() {
        assert!(Epoch::new(0.5, 1.0).is_ok());
        assert!(Epoch::new(-0.5, 1.0).is_err());
        assert!(Epoch::new(0.5, 0.0).is_err());
        assert!(Epoch::new(f64::NAN, 1.0).is_err());
        assert!(Epoch::new(0.5, f64::INFINITY).is_err());
    }

    #[test]
    fn epoch_classification_and_charge() {
        assert!(job().is_job());
        assert!(!job().is_idle());
        assert!(idle().is_idle());
        assert_eq!(job().charge(), 0.5);
        assert_eq!(idle().charge(), 0.0);
        let segment = job().to_segment();
        assert_eq!(segment.current(), 0.5);
        assert_eq!(segment.duration(), 1.0);
    }

    #[test]
    fn finite_profile_requires_epochs() {
        assert!(matches!(LoadProfile::finite(vec![]), Err(WorkloadError::EmptyProfile)));
        assert!(LoadProfile::finite(vec![job()]).is_ok());
    }

    #[test]
    fn cyclic_profile_rejects_all_idle_pattern() {
        assert!(matches!(LoadProfile::cyclic(vec![idle(), idle()]), Err(WorkloadError::IdleCycle)));
        assert!(LoadProfile::cyclic(vec![job(), idle()]).is_ok());
    }

    #[test]
    fn epoch_iterator_finite_vs_cyclic() {
        let finite = LoadProfile::finite(vec![job(), idle()]).unwrap();
        assert_eq!(finite.epochs().count(), 2);
        let cyclic = LoadProfile::cyclic(vec![job(), idle()]).unwrap();
        let first_five: Vec<Epoch> = cyclic.epochs().take(5).collect();
        assert_eq!(first_five.len(), 5);
        assert_eq!(first_five[0], job());
        assert_eq!(first_five[1], idle());
        assert_eq!(first_five[2], job());
        assert_eq!(first_five[4], job());
    }

    #[test]
    fn totals_only_for_finite_profiles() {
        let finite = LoadProfile::finite(vec![job(), idle(), job()]).unwrap();
        assert_eq!(finite.total_duration(), Some(3.0));
        assert_eq!(finite.total_charge(), Some(1.0));
        let cyclic = LoadProfile::cyclic(vec![job(), idle()]).unwrap();
        assert_eq!(cyclic.total_duration(), None);
        assert_eq!(cyclic.total_charge(), None);
        assert_eq!(cyclic.pattern_duration(), 2.0);
        assert_eq!(cyclic.pattern_charge(), 0.5);
    }

    #[test]
    fn current_at_handles_cyclic_wraparound() {
        let cyclic = LoadProfile::cyclic(vec![job(), idle()]).unwrap();
        assert_eq!(cyclic.current_at(0.5), Some(0.5));
        assert_eq!(cyclic.current_at(1.5), Some(0.0));
        assert_eq!(cyclic.current_at(2.5), Some(0.5));
        assert_eq!(cyclic.current_at(100.25), Some(0.5));
        assert_eq!(cyclic.current_at(-1.0), None);
    }

    #[test]
    fn current_at_ends_for_finite_profiles() {
        let finite = LoadProfile::finite(vec![job(), idle()]).unwrap();
        assert_eq!(finite.current_at(0.5), Some(0.5));
        assert_eq!(finite.current_at(1.5), Some(0.0));
        assert_eq!(finite.current_at(2.5), None);
    }

    #[test]
    fn truncate_to_duration_covers_horizon() {
        let cyclic = LoadProfile::cyclic(vec![job(), idle()]).unwrap();
        let finite = cyclic.truncate_to_duration(5.0).unwrap();
        assert!(!finite.is_cyclic());
        assert!(finite.total_duration().unwrap() >= 5.0);
        assert!(cyclic.truncate_to_duration(-1.0).is_err());
    }

    #[test]
    fn truncate_to_charge_covers_bound() {
        let cyclic = LoadProfile::cyclic(vec![job(), idle()]).unwrap();
        let finite = cyclic.truncate_to_charge(3.0).unwrap();
        assert!(finite.total_charge().unwrap() >= 3.0);
        assert!(cyclic.truncate_to_charge(f64::NAN).is_err());
    }

    #[test]
    fn truncate_to_charge_stops_at_end_of_finite_load() {
        let finite = LoadProfile::finite(vec![job(), idle()]).unwrap();
        let truncated = finite.truncate_to_charge(100.0).unwrap();
        assert_eq!(truncated.pattern().len(), 2);
    }

    #[test]
    fn jobs_per_pattern_counts_only_jobs() {
        let profile = LoadProfile::finite(vec![job(), idle(), job(), idle()]).unwrap();
        assert_eq!(profile.jobs_per_pattern(), 2);
    }

    #[test]
    fn segment_iterator_mirrors_epochs() {
        let profile = LoadProfile::finite(vec![job(), idle()]).unwrap();
        let segments: Vec<_> = profile.segments().collect();
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].current(), 0.5);
        assert_eq!(segments[1].current(), 0.0);
    }
}
