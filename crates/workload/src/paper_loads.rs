//! The ten test loads of the paper (Section 5).
//!
//! All loads are built from two job types — a *low-current* job of 250 mA
//! and a *high-current* job of 500 mA, each lasting one minute — in three
//! families:
//!
//! * **CL** — continuous loads with no idle time between jobs;
//! * **ILs** — intermittent loads with *short* (one-minute) idle periods;
//! * **IL`** — intermittent loads with *long* (two-minute) idle periods.
//!
//! The one-minute job duration and the "alternating loads start with the
//! high-current job" convention are not stated explicitly in the paper; they
//! were calibrated against Tables 3 and 4 (every non-random entry is then
//! reproduced to within 0.01 min by the analytical KiBaM) — see
//! EXPERIMENTS.md in the repository root.
//!
//! The two random loads use this crate's seeded generator
//! ([`crate::random::RandomLoadSpec`]); their exact job sequences are not
//! recoverable from the paper, so their absolute lifetimes differ from the
//! published ones while exercising the same load structure.

use crate::random::RandomLoadSpec;
use crate::{builder::LoadProfileBuilder, LoadProfile};

/// Current of the low-current job: 250 mA.
pub const LOW_CURRENT: f64 = 0.25;
/// Current of the high-current job: 500 mA.
pub const HIGH_CURRENT: f64 = 0.5;
/// Duration of every job: one minute (calibrated, see module docs).
pub const JOB_DURATION: f64 = 1.0;
/// Idle period of the `ILs` loads: one minute.
pub const SHORT_IDLE: f64 = 1.0;
/// Idle period of the ``IL` `` loads: two minutes.
pub const LONG_IDLE: f64 = 2.0;
/// Number of jobs generated for the random loads (long enough to outlast any
/// battery configuration used in the paper's experiments).
pub const RANDOM_JOB_COUNT: usize = 400;
/// Seed of the `ILs r1` load.
pub const RANDOM_SEED_R1: u64 = 0xD51_200_901;
/// Seed of the `ILs r2` load.
pub const RANDOM_SEED_R2: u64 = 0xD51_200_902;

/// One of the ten test loads of Section 5 of the paper.
///
/// # Example
///
/// ```
/// use workload::paper_loads::TestLoad;
///
/// assert_eq!(TestLoad::all().len(), 10);
/// assert_eq!(TestLoad::ClAlt.name(), "CL alt");
/// let profile = TestLoad::Cl250.profile();
/// assert!(profile.is_cyclic());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TestLoad {
    /// Continuous 250 mA jobs (`CL 250`).
    Cl250,
    /// Continuous 500 mA jobs (`CL 500`).
    Cl500,
    /// Continuous jobs alternating 500 mA / 250 mA (`CL alt`).
    ClAlt,
    /// 250 mA jobs with one-minute idle periods (`ILs 250`).
    Ils250,
    /// 500 mA jobs with one-minute idle periods (`ILs 500`).
    Ils500,
    /// Alternating 500 mA / 250 mA jobs with one-minute idle periods
    /// (`ILs alt`).
    IlsAlt,
    /// Randomly chosen jobs with one-minute idle periods, seed 1 (`ILs r1`).
    IlsR1,
    /// Randomly chosen jobs with one-minute idle periods, seed 2 (`ILs r2`).
    IlsR2,
    /// 250 mA jobs with two-minute idle periods (``IL` 250``).
    Ill250,
    /// 500 mA jobs with two-minute idle periods (``IL` 500``).
    Ill500,
}

impl TestLoad {
    /// All ten test loads, in the order of the paper's tables.
    #[must_use]
    pub fn all() -> [TestLoad; 10] {
        [
            TestLoad::Cl250,
            TestLoad::Cl500,
            TestLoad::ClAlt,
            TestLoad::Ils250,
            TestLoad::Ils500,
            TestLoad::IlsAlt,
            TestLoad::IlsR1,
            TestLoad::IlsR2,
            TestLoad::Ill250,
            TestLoad::Ill500,
        ]
    }

    /// The load name as printed in the paper's tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TestLoad::Cl250 => "CL 250",
            TestLoad::Cl500 => "CL 500",
            TestLoad::ClAlt => "CL alt",
            TestLoad::Ils250 => "ILs 250",
            TestLoad::Ils500 => "ILs 500",
            TestLoad::IlsAlt => "ILs alt",
            TestLoad::IlsR1 => "ILs r1",
            TestLoad::IlsR2 => "ILs r2",
            TestLoad::Ill250 => "IL` 250",
            TestLoad::Ill500 => "IL` 500",
        }
    }

    /// Whether this is one of the two random loads (whose exact job sequence
    /// is not recoverable from the paper).
    #[must_use]
    pub fn is_random(&self) -> bool {
        matches!(self, TestLoad::IlsR1 | TestLoad::IlsR2)
    }

    /// The load profile. Deterministic loads are cyclic (they repeat until
    /// the batteries die); random loads are long finite sequences.
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        match self {
            TestLoad::Cl250 => continuous(&[LOW_CURRENT]),
            TestLoad::Cl500 => continuous(&[HIGH_CURRENT]),
            TestLoad::ClAlt => continuous(&[HIGH_CURRENT, LOW_CURRENT]),
            TestLoad::Ils250 => intermittent(&[LOW_CURRENT], SHORT_IDLE),
            TestLoad::Ils500 => intermittent(&[HIGH_CURRENT], SHORT_IDLE),
            TestLoad::IlsAlt => intermittent(&[HIGH_CURRENT, LOW_CURRENT], SHORT_IDLE),
            TestLoad::IlsR1 => random_load(RANDOM_SEED_R1),
            TestLoad::IlsR2 => random_load(RANDOM_SEED_R2),
            TestLoad::Ill250 => intermittent(&[LOW_CURRENT], LONG_IDLE),
            TestLoad::Ill500 => intermittent(&[HIGH_CURRENT], LONG_IDLE),
        }
    }

    /// The lifetime of battery B1 under this load as reported in Table 3 of
    /// the paper (analytical KiBaM column), in minutes.
    #[must_use]
    pub fn paper_lifetime_b1(&self) -> f64 {
        match self {
            TestLoad::Cl250 => 4.53,
            TestLoad::Cl500 => 2.02,
            TestLoad::ClAlt => 2.58,
            TestLoad::Ils250 => 10.80,
            TestLoad::Ils500 => 4.30,
            TestLoad::IlsAlt => 4.80,
            TestLoad::IlsR1 => 4.72,
            TestLoad::IlsR2 => 4.72,
            TestLoad::Ill250 => 21.86,
            TestLoad::Ill500 => 6.53,
        }
    }

    /// The lifetime of battery B2 under this load as reported in Table 4 of
    /// the paper (analytical KiBaM column), in minutes.
    #[must_use]
    pub fn paper_lifetime_b2(&self) -> f64 {
        match self {
            TestLoad::Cl250 => 12.16,
            TestLoad::Cl500 => 4.53,
            TestLoad::ClAlt => 6.45,
            TestLoad::Ils250 => 44.78,
            TestLoad::Ils500 => 10.80,
            TestLoad::IlsAlt => 16.93,
            TestLoad::IlsR1 => 22.71,
            TestLoad::IlsR2 => 14.81,
            TestLoad::Ill250 => 84.90,
            TestLoad::Ill500 => 21.86,
        }
    }

    /// The two-battery (2×B1) system lifetimes reported in Table 5 of the
    /// paper for the four schedules, in minutes:
    /// `(sequential, round robin, best of two, optimal)`.
    #[must_use]
    pub fn paper_table5(&self) -> (f64, f64, f64, f64) {
        match self {
            TestLoad::Cl250 => (9.12, 11.60, 11.60, 12.04),
            TestLoad::Cl500 => (4.10, 4.53, 4.53, 4.58),
            TestLoad::ClAlt => (5.48, 6.10, 6.12, 6.48),
            TestLoad::Ils250 => (22.80, 38.96, 38.96, 40.80),
            TestLoad::Ils500 => (8.60, 10.48, 10.48, 10.48),
            TestLoad::IlsAlt => (12.38, 12.82, 16.30, 16.91),
            TestLoad::IlsR1 => (12.80, 16.26, 16.26, 20.52),
            TestLoad::IlsR2 => (12.24, 14.50, 14.50, 14.54),
            TestLoad::Ill250 => (45.84, 76.00, 76.00, 78.96),
            TestLoad::Ill500 => (12.94, 15.96, 15.96, 18.68),
        }
    }
}

impl std::fmt::Display for TestLoad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn continuous(currents: &[f64]) -> LoadProfile {
    let mut builder = LoadProfileBuilder::new();
    for &current in currents {
        builder = builder.job(current, JOB_DURATION);
    }
    // xlint: allow(panic) -- the hard-coded paper constants always build
    builder.build_cyclic().expect("paper load patterns are valid")
}

fn intermittent(currents: &[f64], idle: f64) -> LoadProfile {
    let mut builder = LoadProfileBuilder::new();
    for &current in currents {
        builder = builder.job(current, JOB_DURATION).idle(idle);
    }
    // xlint: allow(panic) -- the hard-coded paper constants always build
    builder.build_cyclic().expect("paper load patterns are valid")
}

fn random_load(seed: u64) -> LoadProfile {
    RandomLoadSpec::new(vec![LOW_CURRENT, HIGH_CURRENT], JOB_DURATION, SHORT_IDLE, RANDOM_JOB_COUNT)
        // xlint: allow(panic) -- the hard-coded paper constants always validate
        .expect("the random-load specification constants are valid")
        .generate(seed)
        // xlint: allow(panic) -- generation from a validated spec cannot fail
        .expect("generation from a valid specification cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kibam::lifetime::lifetime_for_segments;
    use kibam::BatteryParams;

    fn analytic_lifetime(load: TestLoad, params: &BatteryParams) -> f64 {
        lifetime_for_segments(params, load.profile().segments())
            .expect("every paper load eventually empties the battery")
            .lifetime
    }

    #[test]
    fn ten_loads_with_unique_names() {
        let loads = TestLoad::all();
        assert_eq!(loads.len(), 10);
        let names: std::collections::HashSet<_> = loads.iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn deterministic_loads_are_cyclic_random_loads_finite() {
        for load in TestLoad::all() {
            if load.is_random() {
                assert!(!load.profile().is_cyclic(), "{load} should be finite");
            } else {
                assert!(load.profile().is_cyclic(), "{load} should be cyclic");
            }
        }
    }

    #[test]
    fn alternating_loads_start_with_high_current_job() {
        for load in [TestLoad::ClAlt, TestLoad::IlsAlt] {
            let first = load.profile().pattern()[0];
            assert_eq!(first.current(), HIGH_CURRENT, "{load} must start with 500 mA");
        }
    }

    #[test]
    fn deterministic_b1_lifetimes_match_table_3() {
        let b1 = BatteryParams::itsy_b1();
        for load in TestLoad::all() {
            if load.is_random() {
                continue;
            }
            let lifetime = analytic_lifetime(load, &b1);
            let paper = load.paper_lifetime_b1();
            assert!(
                (lifetime - paper).abs() < 0.015,
                "{load}: computed {lifetime:.3}, paper {paper}"
            );
        }
    }

    #[test]
    fn deterministic_b2_lifetimes_match_table_4() {
        let b2 = BatteryParams::itsy_b2();
        for load in TestLoad::all() {
            if load.is_random() {
                continue;
            }
            let lifetime = analytic_lifetime(load, &b2);
            let paper = load.paper_lifetime_b2();
            assert!(
                (lifetime - paper).abs() < 0.015,
                "{load}: computed {lifetime:.3}, paper {paper}"
            );
        }
    }

    #[test]
    fn random_loads_have_plausible_lifetimes() {
        // The exact sequences are unknown; the lifetime must lie between the
        // all-high (ILs 500) and all-low (ILs 250) intermittent loads.
        let b1 = BatteryParams::itsy_b1();
        let low = analytic_lifetime(TestLoad::Ils500, &b1);
        let high = analytic_lifetime(TestLoad::Ils250, &b1);
        for load in [TestLoad::IlsR1, TestLoad::IlsR2] {
            let lifetime = analytic_lifetime(load, &b1);
            assert!(
                lifetime >= low - 0.01 && lifetime <= high + 0.01,
                "{load}: {lifetime} outside [{low}, {high}]"
            );
        }
    }

    #[test]
    fn random_loads_differ_from_each_other() {
        assert_ne!(TestLoad::IlsR1.profile(), TestLoad::IlsR2.profile());
    }

    #[test]
    fn random_loads_are_long_enough_for_two_b2_batteries() {
        // Two B2 batteries hold 22 A·min in total; the random loads must be
        // able to draw more than that so they never end prematurely.
        for load in [TestLoad::IlsR1, TestLoad::IlsR2] {
            let charge = load.profile().total_charge().unwrap();
            assert!(charge > 2.0 * 11.0, "{load} draws only {charge} A·min");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(TestLoad::Ill500.to_string(), "IL` 500");
    }

    #[test]
    fn paper_reference_values_are_self_consistent() {
        for load in TestLoad::all() {
            let (seq, rr, b2, opt) = load.paper_table5();
            assert!(seq <= rr + 1e-9, "{load}: sequential never beats round robin");
            assert!(rr <= b2 + 1e-9, "{load}: best-of-two never loses to round robin");
            assert!(b2 <= opt + 1e-9, "{load}: optimal dominates best-of-two");
        }
    }
}
