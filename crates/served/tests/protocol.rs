//! Protocol robustness for the serving loop.
//!
//! A connection is a hostile place: lines can be malformed, oversized,
//! duplicated-key JSON, or valid JSON that is not a request. Every such
//! line must get exactly one error response — with the parser's byte
//! offset where one exists — and the server must keep answering the lines
//! after it. Concurrent clients must each get their own responses, in
//! their own request order, bit-identical to the batch engine.

use engine::json::JsonValue;
use engine::{
    run_grid, BackendKind, BatterySpec, DiscSpec, FleetDef, LoadSpec, PolicyKind, Scenario,
    ScenarioSpec,
};
use served::{ServeConfig, Server};
use std::sync::Arc;
use workload::paper_loads::TestLoad;

/// Drives one in-memory connection and returns the response lines.
fn converse(server: &Server, input: &str) -> Vec<JsonValue> {
    let mut output = Vec::new();
    server.serve_connection(input.as_bytes(), &mut output).expect("in-memory I/O cannot fail");
    let text = String::from_utf8(output).expect("responses are UTF-8");
    text.lines().map(|line| JsonValue::parse(line).expect("every response line parses")).collect()
}

fn status(response: &JsonValue) -> &str {
    response.get("status").and_then(JsonValue::as_str).expect("responses carry a status")
}

fn code(response: &JsonValue) -> &str {
    response.get("code").and_then(JsonValue::as_str).expect("error responses carry a code")
}

fn offset(response: &JsonValue) -> Option<u64> {
    response.get("offset").and_then(JsonValue::as_u64)
}

#[test]
fn malformed_lines_get_offset_errors_and_do_not_kill_the_connection() {
    let server = Server::start(ServeConfig::default());
    // The json_malformed.rs corpus cases, interleaved with a valid request
    // that must still be answered after every piece of garbage.
    let valid = r#"{"battery":"B1","count":2,"load":"CL 500","policy":"round-robin"}"#;
    let garbage: [(&str, u64); 7] = [
        (r#"{"a": 1"#, 7),           // truncated object
        (r#"{"a":1,"a":2}"#, 7),     // duplicate key, reported at the second key
        ("\"\\x\"", 2),              // bad string escape
        ("1e999", 0),                // overflows the finite f64 range
        ("{} x", 3),                 // trailing garbage
        ("tru", 0),                  // truncated keyword
        (r#"{"steps": 1e999}"#, 10), // nested overflow
    ];
    let mut input = String::new();
    for (line, _) in &garbage {
        input.push_str(line);
        input.push('\n');
        input.push_str(valid);
        input.push('\n');
    }
    let responses = converse(&server, &input);
    assert_eq!(responses.len(), 2 * garbage.len());
    for (index, (line, expected_offset)) in garbage.iter().enumerate() {
        let error = &responses[2 * index];
        assert_eq!(status(error), "error", "for {line:?}");
        assert_eq!(code(error), "parse", "for {line:?}");
        assert_eq!(offset(error), Some(*expected_offset), "for {line:?}");
        let ok = &responses[2 * index + 1];
        assert_eq!(status(ok), "ok", "the valid request after {line:?} must still be answered");
    }
    server.shutdown();
}

#[test]
fn non_request_json_oversized_lines_and_admission_refusals_are_typed() {
    let config =
        ServeConfig { max_line_bytes: 256, interactive_budget: 1000, ..Default::default() };
    let server = Server::start(config);

    let valid = r#"{"battery":"B1","count":2,"load":"CL 500","policy":"round-robin"}"#;
    let not_a_request = r#"{"battery":"B1","load":"CL 500","policy":"round-robin","frob":1}"#;
    let oversized = format!("{{\"battery\":\"B1\",\"junk\":\"{}\"}}", "x".repeat(400));
    let over_budget = r#"{"id":9,"battery":"B1","count":2,"disc":"coarse","load":"CL 500","policy":{"kind":"optimal","budget":999999}}"#;
    let input = format!("{not_a_request}\n{oversized}\n{over_budget}\n{valid}\n");

    let responses = converse(&server, &input);
    assert_eq!(responses.len(), 4);
    assert_eq!(status(&responses[0]), "error");
    assert_eq!(code(&responses[0]), "bad_request");
    assert_eq!(status(&responses[1]), "error");
    assert_eq!(code(&responses[1]), "oversized");
    assert_eq!(status(&responses[2]), "error");
    assert_eq!(code(&responses[2]), "admission");
    // Admission errors echo the id the request carried.
    assert_eq!(responses[2].get("id").and_then(JsonValue::as_u64), Some(9));
    assert_eq!(status(&responses[3]), "ok");
    server.shutdown();
}

#[test]
fn budget_exhaustion_is_answered_not_fatal() {
    let server = Server::start(ServeConfig::default());
    let input = concat!(
        r#"{"class":"batch","battery":"B1","count":2,"disc":"coarse","load":"ILs alt","policy":{"kind":"optimal","budget":1}}"#,
        "\n",
        r#"{"battery":"B1","count":2,"load":"CL 500","policy":"round-robin"}"#,
        "\n",
    );
    let responses = converse(&server, input);
    assert_eq!(responses.len(), 2);
    assert_eq!(status(&responses[0]), "error");
    assert_eq!(code(&responses[0]), "budget");
    assert_eq!(status(&responses[1]), "ok");
    server.shutdown();
}

#[test]
fn concurrent_clients_get_their_own_answers_bit_identical_to_the_batch_engine() {
    // The reference: a batch grid over loads × policies on 2 × B1.
    let loads = [TestLoad::Cl500, TestLoad::Ils500, TestLoad::IlsAlt, TestLoad::Cl250];
    let policies = [PolicyKind::Sequential, PolicyKind::RoundRobin, PolicyKind::BestOfTwo];
    let spec = ScenarioSpec {
        batteries: vec![BatterySpec::b1()],
        battery_counts: vec![2],
        fleets: vec![],
        discretizations: vec![DiscSpec::paper()],
        loads: loads.iter().map(|l| LoadSpec::Paper(*l)).collect(),
        policies: policies.to_vec(),
        backends: vec![BackendKind::Discretized],
    };
    let reference = run_grid(&spec).expect("the reference grid runs");

    let server = Arc::new(Server::start(ServeConfig::default()));
    let mut clients = Vec::new();
    for client in 0..4 {
        let server = Arc::clone(&server);
        clients.push(std::thread::spawn(move || {
            let mut input = String::new();
            for (index, load) in loads.iter().enumerate() {
                let policy = policies[(index + client) % policies.len()];
                input.push_str(&format!(
                    "{{\"id\":{index},\"battery\":\"B1\",\"count\":2,\"load\":\"{}\",\
                     \"policy\":\"{}\"}}\n",
                    load.name(),
                    policy.name(),
                ));
            }
            let mut output = Vec::new();
            server
                .serve_connection(input.as_bytes(), &mut output)
                .expect("in-memory I/O cannot fail");
            (client, String::from_utf8(output).expect("responses are UTF-8"))
        }));
    }
    for handle in clients {
        let (client, text) = handle.join().expect("client threads do not panic");
        let responses: Vec<JsonValue> =
            text.lines().map(|l| JsonValue::parse(l).expect("response parses")).collect();
        assert_eq!(responses.len(), loads.len());
        for (index, response) in responses.iter().enumerate() {
            // Responses come back in request order: ids are the line index.
            assert_eq!(
                response.get("id").and_then(JsonValue::as_u64),
                Some(index as u64),
                "client {client} got responses out of order"
            );
            assert_eq!(status(response), "ok");
            let policy = policies[(index + client) % policies.len()];
            let scenario = Scenario {
                fleet: FleetDef::uniform(BatterySpec::b1(), 2),
                disc: DiscSpec::paper(),
                load: LoadSpec::Paper(loads[index]),
                policy,
                backend: BackendKind::Discretized,
            };
            let expected = reference
                .iter()
                .find(|r| r.scenario == scenario)
                .expect("every served cell exists in the reference grid");
            let result = response.get("result").expect("ok responses carry a result row");
            // Bit-identical: compare the exact JSON number encodings of the
            // result row against the batch engine's rendering.
            let expected_json = expected.to_json_value();
            for field in ["lifetime_minutes", "residual_charge", "switches", "decisions"] {
                assert_eq!(
                    result.get(field).map(|v| v.render().unwrap()),
                    expected_json.get(field).map(|v| v.render().unwrap()),
                    "client {client} request {index}: field {field} diverges from the batch engine"
                );
            }
        }
    }
    server.shutdown();
}
