//! The serving loop: a bounded request queue, micro-batching workers over
//! the engine's request API, and a line-protocol connection handler.

use crate::config::ServeConfig;
use crate::metrics::Metrics;
use engine::api::run_requests;
use engine::json::JsonValue;
use engine::{
    ErrorCode, PolicyKind, Request, RequestClass, Response, ServeError, SharedSystemCache,
    WorkerCache,
};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued request with its reply route: the connection's sequence
/// number (for in-order writing) and the channel back to its writer.
struct Job {
    seq: u64,
    request: Request,
    /// When the request entered the queue (latency measurement only).
    queued: Instant,
    reply: Sender<(u64, String)>,
}

/// State shared between connections and workers.
struct ServerState {
    config: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    /// Signals workers that the queue is non-empty (or shutting down).
    available: Condvar,
    shutting_down: AtomicBool,
    cache: Arc<SharedSystemCache>,
    metrics: Arc<Metrics>,
}

/// A running scheduling service: worker threads draining a bounded queue
/// of [`Request`]s through the engine's micro-batching request API, with a
/// process-wide system cache shared by every worker.
pub struct Server {
    state: Arc<ServerState>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("config", &self.state.config).finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the worker threads.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        let state = Arc::new(ServerState {
            config: config.clone(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            cache: Arc::new(SharedSystemCache::new()),
            metrics: Arc::new(Metrics::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        Self { state, workers: Mutex::new(workers) }
    }

    /// The process-wide system cache (for stats reporting).
    #[must_use]
    pub fn cache(&self) -> &SharedSystemCache {
        &self.state.cache
    }

    /// The service counters.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// Stops accepting work, answers everything still queued, and joins
    /// the workers. Idempotent.
    pub fn shutdown(&self) {
        // ordering: Relaxed — a latch only; the queue mutex orders the drain.
        self.state.shutting_down.store(true, Ordering::Relaxed);
        self.state.available.notify_all();
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for worker in workers.drain(..) {
            // A worker that panicked already answered with poisoned locks;
            // there is nothing left to salvage from its result.
            let _ = worker.join();
        }
    }

    /// Answers one protocol stream: reads line-delimited JSON requests
    /// from `input`, writes one response line per request to `output` **in
    /// request order**. Malformed, oversized or refused requests get error
    /// responses on the same stream; only transport failures end the
    /// connection early.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error of the underlying reader.
    pub fn serve_connection<R, W>(&self, mut input: R, output: W) -> std::io::Result<()>
    where
        R: BufRead,
        W: Write + Send,
    {
        let (reply, responses) = mpsc::channel::<(u64, String)>();
        let mut read_error = None;
        std::thread::scope(|scope| {
            let writer = scope.spawn(move || write_in_order(responses, output));
            let mut seq: u64 = 0;
            let mut line = Vec::new();
            loop {
                line.clear();
                match read_limited_line(&mut input, self.state.config.max_line_bytes, &mut line) {
                    Err(error) => {
                        read_error = Some(error);
                        break;
                    }
                    Ok(LineRead::Eof) => break,
                    Ok(LineRead::Line) => {
                        if line.iter().all(u8::is_ascii_whitespace) {
                            continue; // blank lines keep streams easy to script
                        }
                        self.submit_line(&line, seq, &reply);
                        seq += 1;
                    }
                    Ok(LineRead::Oversized) => {
                        self.state.metrics.request();
                        let error = ServeError::new(
                            ErrorCode::Oversized,
                            format!(
                                "request line exceeds {} bytes",
                                self.state.config.max_line_bytes
                            ),
                        );
                        self.answer_directly(seq, JsonValue::Null, error, &reply);
                        seq += 1;
                    }
                }
            }
            drop(reply); // writer exits once every job's sender is gone
            let _ = writer.join();
        });
        match read_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    /// Parses one raw line and either queues it or answers it immediately
    /// (parse failure, admission refusal, overload).
    fn submit_line(&self, line: &[u8], seq: u64, reply: &Sender<(u64, String)>) {
        self.state.metrics.request();
        let parsed = std::str::from_utf8(line)
            .map_err(|error| ServeError {
                code: ErrorCode::Parse,
                message: format!("request line is not UTF-8: {error}"),
                offset: Some(error.valid_up_to()),
            })
            .and_then(|text| {
                Request::from_line(text).map_err(|error| ServeError::from_engine(&error))
            });
        let request = match parsed {
            Ok(request) => request,
            Err(error) => {
                self.answer_directly(seq, JsonValue::Null, error, reply);
                return;
            }
        };
        if let Some(error) = self.admission_error(&request) {
            self.answer_directly(seq, request.id, error, reply);
            return;
        }
        // xlint: allow(clock) -- queue-to-answer latency measurement only.
        let job = Job { seq, request, queued: Instant::now(), reply: reply.clone() };
        let mut queue = self.state.queue.lock().unwrap_or_else(PoisonError::into_inner);
        // ordering: Relaxed — checked under the queue mutex shutdown also takes.
        if self.state.shutting_down.load(Ordering::Relaxed)
            || queue.len() >= self.state.config.queue_capacity
        {
            drop(queue);
            self.state.metrics.overloaded();
            let error =
                ServeError::new(ErrorCode::Overloaded, "request queue is full; retry later");
            let response = Response::failure(job.request.id.clone(), error);
            let _ = reply.send((seq, render_response(&response)));
            return;
        }
        queue.push_back(job);
        drop(queue);
        self.state.available.notify_one();
    }

    /// Checks the request against its class's admission budget.
    fn admission_error(&self, request: &Request) -> Option<ServeError> {
        let PolicyKind::Optimal { budget } = request.scenario.policy else {
            return None;
        };
        let cap = match request.class {
            RequestClass::Interactive => self.state.config.interactive_budget,
            RequestClass::Batch => self.state.config.batch_budget,
        };
        (budget > cap).then(|| {
            ServeError::new(
                ErrorCode::Admission,
                format!(
                    "optimal budget {budget} exceeds the {} class cap {cap}",
                    request.class.name()
                ),
            )
        })
    }

    /// Sends an error response for a request that never reached the queue,
    /// echoing the request id when the line parsed far enough to have one.
    fn answer_directly(
        &self,
        seq: u64,
        id: JsonValue,
        error: ServeError,
        reply: &Sender<(u64, String)>,
    ) {
        self.state.metrics.answered(false, 0);
        let response = Response::failure(id, error);
        let _ = reply.send((seq, render_response(&response)));
    }
}

/// Whether the server told its workers to stop **and** the queue is empty.
fn drained(state: &ServerState, queue: &VecDeque<Job>) -> bool {
    // ordering: Relaxed — read under the queue mutex; see `shutdown`.
    state.shutting_down.load(Ordering::Relaxed) && queue.is_empty()
}

/// One worker: drain up to `batch_max` queued jobs, answer them through
/// the engine's micro-batching request API, repeat until shutdown.
///
/// Each batch gets a **fresh** worker cache over the process-wide shared
/// cache: tables are cloned from the shared prototypes (never recomputed),
/// worker memory stays bounded for a long-running process, and every
/// batch's reuse is visible in the shared hit counters.
fn worker_loop(state: &ServerState) {
    loop {
        let jobs = {
            let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
            while queue.is_empty() {
                if drained(state, &queue) {
                    return;
                }
                queue = state.available.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
            let take = queue.len().min(state.config.batch_max);
            queue.drain(..take).collect::<Vec<Job>>()
        };
        let requests: Vec<Request> = jobs.iter().map(|job| job.request.clone()).collect();
        let mut cache = WorkerCache::with_shared(Arc::clone(&state.cache));
        let mut responses = run_requests(&requests, &mut cache);
        state.metrics.batch(jobs.len() as u64);
        for (job, response) in jobs.iter().zip(responses.iter_mut()) {
            // Latency is measurement-only; it never enters the result row.
            let elapsed = job.queued.elapsed().as_micros();
            response.latency_micros = Some(u64::try_from(elapsed).unwrap_or(u64::MAX));
            state.metrics.answered(response.is_ok(), response.latency_micros.unwrap_or(0));
            let _ = job.reply.send((job.seq, render_response(response)));
        }
    }
}

/// Renders a response as one output line. Result rows only carry finite
/// numbers, so rendering cannot fail in practice; if it ever does, the
/// substitute line keeps the protocol invariant of one response per
/// request.
pub(crate) fn render_response(response: &Response) -> String {
    response.to_json_value().render().unwrap_or_else(|error| {
        let fallback = Response::failure(
            JsonValue::Null,
            ServeError::new(ErrorCode::Internal, format!("response rendering failed: {error}")),
        );
        fallback
            .to_json_value()
            .render()
            .unwrap_or_else(|_| "{\"status\":\"error\",\"code\":\"internal\"}".to_owned())
    })
}

/// The outcome of reading one request line.
enum LineRead {
    /// A (possibly final, unterminated) line is in the buffer.
    Line,
    /// Nothing left to read.
    Eof,
    /// The line exceeded the limit; the rest of it was discarded.
    Oversized,
}

/// Reads one `\n`-terminated line of at most `max` bytes into `buf` (the
/// terminator is stripped). Longer lines are discarded to the terminator
/// and reported as [`LineRead::Oversized`], keeping the stream aligned on
/// line boundaries.
fn read_limited_line<R: BufRead>(
    input: &mut R,
    max: usize,
    buf: &mut Vec<u8>,
) -> std::io::Result<LineRead> {
    let limit = max as u64 + 1;
    let read = Read::take(&mut *input, limit).read_until(b'\n', buf)?;
    if read == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        return Ok(LineRead::Line);
    }
    if (read as u64) < limit {
        return Ok(LineRead::Line); // final line without a terminator
    }
    // The line is longer than the limit: skip to the next line boundary.
    loop {
        buf.clear();
        let read = Read::take(&mut *input, limit).read_until(b'\n', buf)?;
        if read == 0 || buf.last() == Some(&b'\n') {
            buf.clear();
            return Ok(LineRead::Oversized);
        }
    }
}

/// Receives `(seq, line)` pairs and writes the lines in sequence order,
/// buffering out-of-order arrivals. On disconnect, anything still pending
/// (gaps can only come from a dropped reply sender) is flushed in order so
/// no response is silently lost.
fn write_in_order<W: Write>(
    responses: mpsc::Receiver<(u64, String)>,
    mut output: W,
) -> std::io::Result<()> {
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    let mut next: u64 = 0;
    for (seq, line) in responses {
        pending.insert(seq, line);
        while let Some(line) = pending.remove(&next) {
            output.write_all(line.as_bytes())?;
            output.write_all(b"\n")?;
            next += 1;
        }
        if pending.is_empty() {
            output.flush()?;
        }
    }
    for (_, line) in pending {
        output.write_all(line.as_bytes())?;
        output.write_all(b"\n")?;
    }
    output.flush()
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
