//! The self-contained smoke benchmark behind `served --smoke`.
//!
//! Fires a mixed burst — uniform and mixed fleets, all four backends, one
//! coarse-grid optimal cell — through an in-process [`Server`] over
//! in-memory I/O, repeats it so the process-wide cache gets exercised, and
//! summarizes throughput, latency percentiles and cache counters in the
//! `serve-bench-v1` document CI archives as `BENCH_serve.json`.

use crate::config::ServeConfig;
use crate::server::Server;
use engine::json::JsonValue;
use engine::SharedCacheStats;
use std::time::Instant;

/// How often the base burst is replayed. Every replay after the first must
/// be answered entirely from the process-wide system cache.
const REPEATS: usize = 4;

/// The base burst: valid requests covering every backend, both request
/// classes, a mixed fleet and one coarse-grid optimal search.
const BURST: [&str; 8] = [
    r#"{"battery":"B1","count":2,"load":"CL 500","policy":"round-robin"}"#,
    r#"{"battery":"B1","count":2,"load":"ILs 500","policy":"best-of-two"}"#,
    r#"{"battery":"B1","count":2,"load":"ILs alt","policy":"sequential"}"#,
    r#"{"battery":"B2","count":2,"load":"CL 250","policy":"round-robin"}"#,
    r#"{"fleet":{"name":"B1+B2","batteries":[{"name":"B1","capacity":5.5,"c":0.166,"k_prime":0.122},{"name":"B2","capacity":11.0,"c":0.166,"k_prime":0.122}]},"load":"CL 500","policy":"capacity-rr"}"#,
    r#"{"battery":"B1","count":2,"load":"ILs 250","policy":"round-robin","backend":"continuous"}"#,
    r#"{"battery":"B1","count":2,"load":"CL 500","policy":"round-robin","backend":"rv"}"#,
    r#"{"class":"batch","battery":"B1","count":2,"disc":"coarse","load":"CL 500","policy":{"kind":"optimal","budget":20000000}}"#,
];

/// The smoke run's verdict: counters plus the rendered artifact document.
#[derive(Debug, Clone)]
pub struct SmokeSummary {
    /// Requests fired.
    pub requests: usize,
    /// Responses with a result row.
    pub ok: usize,
    /// Responses with an error.
    pub errors: usize,
    /// Sustained throughput over the whole burst, in requests/second.
    pub throughput_rps: f64,
    /// Process-wide cache counters after the run.
    pub cache: SharedCacheStats,
    /// The rendered `serve-bench-v1` document.
    pub bench_json: String,
}

/// Runs the smoke burst against an in-process server and checks its
/// correctness invariants (every request answered OK, tables built once
/// per system, replays served from cache). The throughput gate is the
/// caller's job — write the artifact first, then gate.
///
/// # Errors
///
/// Returns a human-readable description of the first violated invariant.
pub fn run_smoke(config: &ServeConfig) -> Result<SmokeSummary, String> {
    // Keep batches smaller than the burst so replays land in later batches
    // and the shared-cache hit counters are exercised deterministically.
    let mut config = config.clone();
    config.batch_max = config.batch_max.min(BURST.len());
    let config = &config;

    let mut input = String::new();
    for repeat in 0..REPEATS {
        for (index, request) in BURST.iter().enumerate() {
            // Stamp a unique id into each line by rewriting the opening
            // brace; ids prove every response reaches its caller.
            let id = repeat * BURST.len() + index;
            input.push_str(&format!("{{\"id\":{id},"));
            input.push_str(&request[1..]);
            input.push('\n');
        }
    }
    let expected = REPEATS * BURST.len();

    let server = Server::start(config.clone());
    let mut output: Vec<u8> = Vec::new();
    // xlint: allow(clock) -- throughput measurement only.
    let started = Instant::now();
    server
        .serve_connection(input.as_bytes(), &mut output)
        .map_err(|error| format!("smoke connection failed: {error}"))?;
    let elapsed = started.elapsed();
    server.shutdown();

    let text =
        String::from_utf8(output).map_err(|error| format!("smoke output is not UTF-8: {error}"))?;
    let mut ok = 0;
    let mut answered_ids = Vec::new();
    for line in text.lines() {
        let response = JsonValue::parse(line)
            .map_err(|error| format!("unparseable response line '{line}': {error}"))?;
        match response.get("status").and_then(JsonValue::as_str) {
            Some("ok") => ok += 1,
            Some("error") => return Err(format!("smoke burst got an error response: {line}")),
            _ => return Err(format!("response without a status: {line}")),
        }
        let id = response
            .get("id")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("response without a numeric id: {line}"))?;
        answered_ids.push(id);
        if response.get("latency_micros").and_then(JsonValue::as_u64).is_none() {
            return Err(format!("response without a latency stamp: {line}"));
        }
    }
    if ok != expected {
        return Err(format!("expected {expected} responses, got {ok}"));
    }
    let mut sorted = answered_ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != expected {
        return Err(format!("expected {expected} distinct response ids, got {}", sorted.len()));
    }

    let cache = server.cache().stats();
    // The burst holds four distinct systems: B1×2 paper, B2×2 paper,
    // B1+B2 paper and B1×2 coarse. Replays must hit, never rebuild.
    if cache.builds != 4 {
        return Err(format!("expected 4 system builds (one per system), got {}", cache.builds));
    }
    if cache.hits == 0 {
        return Err("expected process-wide cache hits on replayed requests".to_owned());
    }

    let elapsed_secs = elapsed.as_secs_f64().max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let throughput_rps = expected as f64 / elapsed_secs;
    let snapshot = server.metrics().snapshot();
    let bench_json = snapshot
        .to_bench_json(throughput_rps, &cache)
        .render()
        .map_err(|error| format!("bench document rendering failed: {error}"))?;
    Ok(SmokeSummary { requests: expected, ok, errors: 0, throughput_rps, cache, bench_json })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_burst_passes_its_invariants() {
        let summary = run_smoke(&ServeConfig::default()).unwrap();
        assert_eq!(summary.requests, REPEATS * BURST.len());
        assert_eq!(summary.ok, summary.requests);
        assert_eq!(summary.errors, 0);
        assert!(summary.throughput_rps > 0.0);
        assert_eq!(summary.cache.builds, 4);
        assert!(summary.cache.hits >= summary.cache.builds);
        assert!(summary.bench_json.contains("\"schema\":\"serve-bench-v1\""));
    }
}
