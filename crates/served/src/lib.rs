//! A long-running battery-scheduling service over the engine's request
//! API.
//!
//! `served` turns the batch scenario engine into infrastructure: a caller
//! asks "given this fleet, this load, this policy or optimal budget — what
//! lifetime, what schedule?" by writing one line of JSON, and gets back
//! the **same result row** the batch engine emits for the equivalent grid
//! cell. The protocol is line-delimited JSON over stdin (`--stdin`) or TCP
//! (`--listen ADDR`); see `docs/protocol.md` for the schema and error
//! codes.
//!
//! The serving loop is built from three pieces:
//!
//! - a bounded request queue with **admission control**: per-class caps on
//!   optimal-search node budgets, and explicit `overloaded` responses when
//!   the queue is full — no unbounded buffering, no silent drops;
//! - **micro-batching workers**: each worker drains a slice of the queue
//!   and answers it through [`engine::api::run_requests`], which groups
//!   compatible requests (same system, same backend) into one
//!   struct-of-arrays kernel pass;
//! - the **process-wide system cache** ([`engine::SharedSystemCache`]):
//!   recovery/service/RV step tables are built once per (fleet,
//!   discretization) across all requests ever, and the hit/build counters
//!   land in the `BENCH_serve.json` smoke artifact.
//!
//! The [`Server`] type is library-level so tests can drive connections
//! over in-memory readers and writers; the binary is a thin mode switch
//! around it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod config;
mod metrics;
mod server;
mod smoke;

pub use config::{parse_arg_list, parse_args, Cli, Mode, ServeConfig, USAGE};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::Server;
pub use smoke::{run_smoke, SmokeSummary};
