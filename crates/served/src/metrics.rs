//! Service counters and the `BENCH_serve.json` artifact model.

use engine::json::JsonValue;
use engine::SharedCacheStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Process-wide service counters. All counters are statistics: they relax
/// ordering and never feed back into results.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests submitted to the queue (including ones refused at
    /// admission).
    requests: AtomicU64,
    /// Requests answered with a result row.
    ok: AtomicU64,
    /// Requests answered with a protocol or engine error.
    errors: AtomicU64,
    /// Requests refused because the queue was full or shutting down.
    overloaded: AtomicU64,
    /// Micro-batched engine calls made by workers.
    batches: AtomicU64,
    /// Requests answered through those calls.
    batched_requests: AtomicU64,
    /// Queue-to-answer latencies in microseconds.
    latencies: Mutex<Vec<u64>>,
}

impl Metrics {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a submitted request.
    pub fn request(&self) {
        // ordering: Relaxed — statistics counter.
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an answered request and its latency.
    pub fn answered(&self, ok: bool, latency_micros: u64) {
        let counter = if ok { &self.ok } else { &self.errors };
        // ordering: Relaxed — statistics counter.
        counter.fetch_add(1, Ordering::Relaxed);
        self.latencies.lock().unwrap_or_else(PoisonError::into_inner).push(latency_micros);
    }

    /// Counts a request refused as overloaded.
    pub fn overloaded(&self) {
        // ordering: Relaxed — statistics counter.
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one micro-batched engine call answering `requests` requests.
    pub fn batch(&self, requests: u64) {
        // ordering: Relaxed — statistics counter.
        self.batches.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — statistics counter.
        self.batched_requests.fetch_add(requests, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of the counters.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut latencies = self.latencies.lock().unwrap_or_else(PoisonError::into_inner).clone();
        latencies.sort_unstable();
        // ordering: Relaxed — statistics counters.
        let read = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        MetricsSnapshot {
            requests: read(&self.requests),
            ok: read(&self.ok),
            errors: read(&self.errors),
            overloaded: read(&self.overloaded),
            batches: read(&self.batches),
            batched_requests: read(&self.batched_requests),
            latencies,
        }
    }
}

/// A frozen view of the counters with sorted latencies, ready for
/// percentile queries and artifact rendering.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests submitted.
    pub requests: u64,
    /// Requests answered with a result row.
    pub ok: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Requests refused as overloaded.
    pub overloaded: u64,
    /// Micro-batched engine calls.
    pub batches: u64,
    /// Requests answered through those calls.
    pub batched_requests: u64,
    /// Sorted queue-to-answer latencies in microseconds.
    pub latencies: Vec<u64>,
}

impl MetricsSnapshot {
    /// The nearest-rank percentile of the recorded latencies (`p` in
    /// `0..=100`), or 0 with no samples.
    #[must_use]
    pub fn latency_percentile(&self, p: u64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let len = self.latencies.len() as u64;
        let rank = (p * len).div_ceil(100).clamp(1, len);
        let index = usize::try_from(rank - 1).unwrap_or(0);
        self.latencies[index]
    }

    /// Renders the `serve-bench-v1` artifact document.
    #[must_use]
    pub fn to_bench_json(&self, throughput_rps: f64, cache: &SharedCacheStats) -> JsonValue {
        #[allow(clippy::cast_precision_loss)]
        let count = |value: u64| JsonValue::Number(value as f64);
        JsonValue::object(vec![
            ("schema", JsonValue::String("serve-bench-v1".to_owned())),
            ("requests", count(self.requests)),
            ("ok", count(self.ok)),
            ("errors", count(self.errors)),
            ("overloaded", count(self.overloaded)),
            ("throughput_rps", JsonValue::Number(throughput_rps)),
            (
                "latency_micros",
                JsonValue::object(vec![
                    ("p50", count(self.latency_percentile(50))),
                    ("p90", count(self.latency_percentile(90))),
                    ("p99", count(self.latency_percentile(99))),
                    ("max", count(self.latencies.last().copied().unwrap_or(0))),
                ]),
            ),
            (
                "cache",
                JsonValue::object(vec![
                    ("systems", count(cache.systems as u64)),
                    ("hits", count(cache.hits)),
                    ("builds", count(cache.builds)),
                ]),
            ),
            ("batches", count(self.batches)),
            ("batched_requests", count(self.batched_requests)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let metrics = Metrics::new();
        for latency in [50, 10, 40, 30, 20] {
            metrics.answered(true, latency);
        }
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.latencies, vec![10, 20, 30, 40, 50]);
        assert_eq!(snapshot.latency_percentile(50), 30);
        assert_eq!(snapshot.latency_percentile(90), 50);
        assert_eq!(snapshot.latency_percentile(99), 50);
        assert_eq!(snapshot.latency_percentile(0), 10);
        assert_eq!(snapshot.latency_percentile(100), 50);
        assert_eq!(MetricsSnapshot { latencies: vec![], ..snapshot }.latency_percentile(50), 0);
    }

    #[test]
    fn bench_document_carries_all_counters() {
        let metrics = Metrics::new();
        metrics.request();
        metrics.request();
        metrics.answered(true, 100);
        metrics.answered(false, 200);
        metrics.overloaded();
        metrics.batch(2);
        let snapshot = metrics.snapshot();
        let cache = SharedCacheStats { systems: 1, hits: 5, builds: 1 };
        let json = snapshot.to_bench_json(123.5, &cache).render().unwrap();
        assert!(json.contains("\"schema\":\"serve-bench-v1\""));
        assert!(json.contains("\"requests\":2"));
        assert!(json.contains("\"ok\":1"));
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\"overloaded\":1"));
        assert!(json.contains("\"throughput_rps\":123.5"));
        assert!(json.contains("\"builds\":1"));
        assert!(json.contains("\"batched_requests\":2"));
    }
}
