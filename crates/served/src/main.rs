//! The `served` binary: a thin mode switch over [`served::Server`].

use served::{parse_args, run_smoke, Mode, Server, USAGE};
use std::io::BufReader;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(message) => {
            if message == "help" {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match cli.mode {
        Mode::Stdin => serve_stdin(cli.config),
        Mode::Listen(addr) => serve_tcp(cli.config, &addr),
        Mode::Smoke { min_throughput, bench_out } => smoke(&cli.config, min_throughput, &bench_out),
    }
}

/// Answers requests from stdin until EOF.
fn serve_stdin(config: served::ServeConfig) -> ExitCode {
    let server = Server::start(config);
    let stdin = std::io::stdin();
    // `StdoutLock` is not `Send`; the owned handle is, and it line-buffers
    // the same way.
    let outcome = server.serve_connection(stdin.lock(), std::io::stdout());
    server.shutdown();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: stdin stream failed: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Accepts TCP connections, one protocol stream per connection.
fn serve_tcp(config: served::ServeConfig, addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(listener) => listener,
        Err(error) => {
            eprintln!("error: cannot listen on {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("served: listening on {addr}");
    let server = Arc::new(Server::start(config));
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            Err(error) => {
                eprintln!("error: accept failed: {error}");
                continue;
            }
        };
        let reader = match stream.try_clone() {
            Ok(clone) => BufReader::new(clone),
            Err(error) => {
                eprintln!("error: cannot clone connection: {error}");
                continue;
            }
        };
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            if let Err(error) = server.serve_connection(reader, stream) {
                eprintln!("error: connection failed: {error}");
            }
        });
    }
    ExitCode::SUCCESS
}

/// Runs the smoke burst, writes the artifact, then gates the throughput
/// floor (artifact first, so a failed gate still leaves the evidence).
fn smoke(config: &served::ServeConfig, min_throughput: f64, bench_out: &str) -> ExitCode {
    let summary = match run_smoke(config) {
        Ok(summary) => summary,
        Err(message) => {
            eprintln!("error: smoke failed: {message}");
            return ExitCode::FAILURE;
        }
    };
    // xlint: allow(blocking-io) -- one-shot artifact write at exit
    if let Err(error) = std::fs::write(bench_out, format!("{}\n", summary.bench_json)) {
        eprintln!("error: cannot write {bench_out}: {error}");
        return ExitCode::FAILURE;
    }
    println!(
        "smoke: {} requests answered ok ({:.1} req/s), {} system builds, {} cache hits -> {}",
        summary.ok, summary.throughput_rps, summary.cache.builds, summary.cache.hits, bench_out
    );
    if summary.throughput_rps < min_throughput {
        eprintln!(
            "error: sustained throughput {:.1} req/s is below the floor {min_throughput:.1}",
            summary.throughput_rps
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
