//! Service configuration and command-line parsing.
//!
//! This is the **only** file in the serving stack that reads the process
//! environment (`std::env`): everything downstream takes an explicit
//! [`ServeConfig`], so a server's behavior is fully determined by the
//! config value it was started with. The workspace linter enforces this
//! split (`env` rule, exempted for files named `config.rs`).

use battery_sched::optimal::DEFAULT_BUDGET;

/// Tuning knobs of a [`Server`](crate::Server).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads answering requests.
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue answers `overloaded`.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains into one micro-batched engine call.
    pub batch_max: usize,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// answered with an `oversized` error.
    pub max_line_bytes: usize,
    /// Largest optimal-search node budget an `interactive` request may ask
    /// for; bigger asks are refused at admission.
    pub interactive_budget: usize,
    /// Largest optimal-search node budget a `batch` request may ask for.
    pub batch_budget: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 1024,
            batch_max: 64,
            max_line_bytes: 64 * 1024,
            interactive_budget: 2_000_000,
            batch_budget: DEFAULT_BUDGET,
        }
    }
}

/// What the binary was asked to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Mode {
    /// Answer requests from stdin, responses to stdout, exit at EOF.
    Stdin,
    /// Accept TCP connections on the given address, one protocol stream
    /// per connection.
    Listen(String),
    /// Run the self-contained smoke benchmark: fire a mixed burst through
    /// an in-process server, write `BENCH_serve.json`, gate a throughput
    /// floor.
    Smoke {
        /// Minimum sustained throughput in requests/second (0 disables the
        /// gate).
        min_throughput: f64,
        /// Where to write the benchmark artifact.
        bench_out: String,
    },
}

/// A parsed command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// The requested mode.
    pub mode: Mode,
    /// Service tuning (defaults overridden by flags).
    pub config: ServeConfig,
}

/// The usage text printed for `--help` and argument errors.
pub const USAGE: &str = "served: battery-scheduling service (line-delimited JSON requests)

USAGE:
    served --stdin
    served --listen ADDR            e.g. --listen 127.0.0.1:7070
    served --smoke [--min-throughput RPS] [--bench-out PATH]

OPTIONS:
    --workers N           worker threads (default 2)
    --queue N             request queue capacity (default 1024)
    --batch N             max requests per micro-batch (default 64)
    --max-line N          max request line bytes (default 65536)
    --min-throughput RPS  smoke: minimum sustained requests/second (default 50)
    --bench-out PATH      smoke: artifact path (default BENCH_serve.json)
    --help                print this text";

/// Parses the process arguments into a [`Cli`].
///
/// # Errors
///
/// Returns a human-readable message (print it with [`USAGE`]) for unknown
/// flags, missing values or conflicting modes. A `--help` request is
/// reported as the error string `"help"`.
pub fn parse_args() -> Result<Cli, String> {
    parse_arg_list(std::env::args().skip(1))
}

/// Flag parsing over an explicit argument list (testable without a
/// process environment).
///
/// # Errors
///
/// See [`parse_args`].
pub fn parse_arg_list<I: Iterator<Item = String>>(mut args: I) -> Result<Cli, String> {
    let mut mode: Option<Mode> = None;
    let mut config = ServeConfig::default();
    let mut min_throughput = 50.0;
    let mut bench_out = "BENCH_serve.json".to_owned();
    let mut smoke = false;

    fn set_mode(slot: &mut Option<Mode>, mode: Mode) -> Result<(), String> {
        match slot {
            Some(_) => Err("give exactly one of --stdin, --listen, --smoke".to_owned()),
            None => {
                *slot = Some(mode);
                Ok(())
            }
        }
    }

    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--stdin" => set_mode(&mut mode, Mode::Stdin)?,
            "--listen" => {
                let addr = value("--listen")?;
                set_mode(&mut mode, Mode::Listen(addr))?;
            }
            "--smoke" => {
                smoke = true;
                set_mode(&mut mode, Mode::Stdin)?; // placeholder, rewritten below
            }
            "--workers" => config.workers = parse_usize("--workers", &value("--workers")?)?,
            "--queue" => config.queue_capacity = parse_usize("--queue", &value("--queue")?)?,
            "--batch" => config.batch_max = parse_usize("--batch", &value("--batch")?)?,
            "--max-line" => {
                config.max_line_bytes = parse_usize("--max-line", &value("--max-line")?)?;
            }
            "--min-throughput" => {
                let raw = value("--min-throughput")?;
                min_throughput = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| format!("--min-throughput: invalid value '{raw}'"))?;
            }
            "--bench-out" => bench_out = value("--bench-out")?,
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let mode = match (smoke, mode) {
        (true, _) => Mode::Smoke { min_throughput, bench_out },
        (false, Some(mode)) => mode,
        (false, None) => return Err("give one of --stdin, --listen, --smoke".to_owned()),
    };
    if config.workers == 0 || config.queue_capacity == 0 || config.batch_max == 0 {
        return Err("--workers, --queue and --batch must be at least 1".to_owned());
    }
    Ok(Cli { mode, config })
}

fn parse_usize(flag: &str, raw: &str) -> Result<usize, String> {
    raw.parse::<usize>().map_err(|_| format!("{flag}: invalid value '{raw}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        parse_arg_list(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_modes_and_overrides() {
        let cli = parse(&["--stdin", "--workers", "4", "--queue", "8"]).unwrap();
        assert_eq!(cli.mode, Mode::Stdin);
        assert_eq!(cli.config.workers, 4);
        assert_eq!(cli.config.queue_capacity, 8);

        let cli = parse(&["--listen", "127.0.0.1:7070"]).unwrap();
        assert_eq!(cli.mode, Mode::Listen("127.0.0.1:7070".to_owned()));

        let cli = parse(&["--smoke", "--min-throughput", "10", "--bench-out", "x.json"]).unwrap();
        assert_eq!(cli.mode, Mode::Smoke { min_throughput: 10.0, bench_out: "x.json".into() });
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--stdin", "--listen", "x"]).is_err());
        assert!(parse(&["--workers"]).is_err());
        assert!(parse(&["--workers", "zero"]).is_err());
        assert!(parse(&["--workers", "0", "--stdin"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert_eq!(parse(&["--help"]).unwrap_err(), "help");
    }
}
