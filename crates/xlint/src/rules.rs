//! The rule engine: token-pattern detectors, `#[cfg(test)]` region
//! masking, and the escape-comment protocol.

use crate::lexer::{lex, Lexed, Token, TokenKind};
use std::fmt;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// (D) `HashMap`/`HashSet` in a result-producing crate.
    Hash,
    /// (D) `Instant::now`/`SystemTime::now` outside `bench`.
    Clock,
    /// (D) `==`/`!=` against a float literal.
    FloatEq,
    /// (D) `partial_cmp(..).unwrap_or(Ordering::Equal)`.
    PartialCmp,
    /// (P) `unwrap`/`expect`/`panic!`-family in a library crate.
    Panic,
    /// (C) `as <integer>` cast in a numeric model crate.
    Cast,
    /// (A) atomic `Ordering::` use without a `// ordering:` comment.
    Ordering,
    /// (L) `std::env` read outside config load in a long-running crate.
    Env,
    /// (L) blocking file I/O in a long-running crate's request paths.
    BlockingIo,
    /// Escape hygiene: a malformed or no-longer-needed `xlint: allow`.
    Escape,
}

impl RuleId {
    /// Every rule, in reporting order.
    pub const ALL: [RuleId; 10] = [
        RuleId::Hash,
        RuleId::Clock,
        RuleId::FloatEq,
        RuleId::PartialCmp,
        RuleId::Panic,
        RuleId::Cast,
        RuleId::Ordering,
        RuleId::Env,
        RuleId::BlockingIo,
        RuleId::Escape,
    ];

    /// The rule's stable name, as used inside `xlint: allow(<name>)`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::Hash => "hash",
            RuleId::Clock => "clock",
            RuleId::FloatEq => "float-eq",
            RuleId::PartialCmp => "partial-cmp",
            RuleId::Panic => "panic",
            RuleId::Cast => "cast",
            RuleId::Ordering => "ordering",
            RuleId::Env => "env",
            RuleId::BlockingIo => "blocking-io",
            RuleId::Escape => "escape",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|rule| rule.name() == name)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which rule groups apply to a file (derived from its crate; see
/// [`crate::walk`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CrateContext {
    /// Determinism rules: `hash`, `clock`, `float-eq`.
    pub deterministic: bool,
    /// Panic-freedom rule (`panic`).
    pub panic_free: bool,
    /// Cast-audit rule (`cast`).
    pub cast_audit: bool,
    /// Long-running-process rules: `env`, `blocking-io` (scoped to the
    /// serving stack; `config.rs` files are exempt — that is where the
    /// environment is allowed to be read, once, at startup).
    pub long_running: bool,
}

impl CrateContext {
    /// The context for auxiliary code (integration tests, examples, the
    /// linter itself): only the always-on rules (`partial-cmp`,
    /// `ordering`, escape hygiene) apply.
    #[must_use]
    pub fn aux() -> Self {
        Self::default()
    }
}

/// One finding (violation) or suppressed finding (allow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the site.
    pub message: String,
}

/// An escape comment that suppressed one or more findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being escaped.
    pub rule: RuleId,
    /// 1-based line of the escape comment.
    pub line: u32,
    /// The mandatory justification after ` -- `.
    pub reason: String,
}

/// The lint result for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations (after escape filtering).
    pub findings: Vec<Finding>,
    /// Consumed escape comments, with their reasons.
    pub allows: Vec<Allow>,
    /// Atomic `Ordering::` sites carrying a `// ordering:` justification.
    pub ordering_documented: usize,
}

const INT_TYPES: [&str; 12] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const ENV_READS: [&str; 6] = ["var", "vars", "var_os", "vars_os", "args", "args_os"];
const FILE_OPENS: [&str; 4] = ["open", "create", "create_new", "options"];

/// A parsed `xlint: allow(<rule>) -- <reason>` escape.
#[derive(Debug)]
struct Escape {
    rule: Option<RuleId>,
    line: u32,
    reason: Option<String>,
    used: bool,
}

/// Extracts every escape comment (one `allow(...)` per comment line).
fn parse_escapes(lexed: &Lexed) -> Vec<Escape> {
    let mut escapes = Vec::new();
    for (&line, text) in &lexed.comments {
        // Doc comments describe the escape syntax; only plain `//`
        // comments can *be* escapes.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(at) = text.find("xlint: allow(") else { continue };
        let rest = &text[at + "xlint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            escapes.push(Escape { rule: None, line, reason: None, used: false });
            continue;
        };
        let rule = RuleId::from_name(rest[..close].trim());
        let reason = rest[close + 1..]
            .split_once("--")
            .map(|(_, reason)| reason.trim())
            .filter(|reason| !reason.is_empty())
            .map(str::to_owned);
        escapes.push(Escape { rule, line, reason, used: false });
    }
    escapes
}

/// Marks every token inside a `#[cfg(test)]`-gated item. The mask is what
/// lets the panic/determinism rules skip test modules while still linting
/// the code above them.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Start of the gated region: the attribute itself plus any
            // further attributes, then the item body.
            let start = i;
            let mut j = skip_attr(tokens, i);
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_attr(tokens, j);
            }
            let end = skip_item(tokens, j);
            for flag in mask.iter_mut().take(end).skip(start) {
                *flag = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    mask
}

/// Whether the tokens at `i` spell `#[cfg(test)]` (whitespace-insensitive:
/// the lexer already dropped it).
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let spelled: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    tokens.len() >= i + spelled.len()
        && spelled.iter().enumerate().all(|(k, want)| tokens[i + k].text == *want)
}

/// Skips one `#[...]` attribute starting at `i` (which points at `#`).
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if j >= tokens.len() || !tokens[j].is_punct("[") {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Skips one item starting at `i`: everything up to the first `;` at
/// bracket depth zero, or through the matching brace of the first `{`.
fn skip_item(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 && tokens[j].text == "}" {
                    return j + 1;
                }
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Lints one source file under the given crate context.
#[must_use]
pub fn lint_source(source: &str, ctx: CrateContext) -> FileReport {
    let lexed = lex(source);
    let mask = test_mask(&lexed.tokens);
    let mut escapes = parse_escapes(&lexed);
    let mut raw: Vec<Finding> = Vec::new();
    let mut report = FileReport::default();

    detect(&lexed, &mask, ctx, &mut raw, &mut report);

    // Escape filtering: a finding is suppressed by a matching, well-formed
    // escape on its own line or the line directly above.
    for finding in raw {
        let escape = escapes.iter_mut().find(|escape| {
            escape.rule == Some(finding.rule)
                && escape.reason.is_some()
                && (escape.line == finding.line || escape.line + 1 == finding.line)
        });
        match escape {
            Some(escape) => {
                escape.used = true;
                report.allows.push(Allow {
                    rule: finding.rule,
                    line: finding.line,
                    reason: escape.reason.clone().unwrap_or_default(),
                });
            }
            None => report.findings.push(finding),
        }
    }

    // Escape hygiene: malformed escapes and escapes that suppressed
    // nothing are findings themselves, so stale justifications cannot
    // accumulate.
    for escape in escapes {
        let problem = match (&escape.rule, &escape.reason, escape.used) {
            (None, _, _) => Some("unknown rule name in `xlint: allow(...)`"),
            (Some(_), None, _) => Some("escape without a ` -- <reason>` justification"),
            (Some(_), Some(_), false) => {
                Some("escape suppresses nothing on this or the next line; remove it")
            }
            _ => None,
        };
        if let Some(problem) = problem {
            report.findings.push(Finding {
                rule: RuleId::Escape,
                line: escape.line,
                message: problem.to_owned(),
            });
        }
    }
    report.findings.sort_by_key(|f| (f.line, f.rule));
    report
}

/// Runs every detector over the token stream, pushing raw (pre-escape)
/// findings.
fn detect(
    lexed: &Lexed,
    mask: &[bool],
    ctx: CrateContext,
    raw: &mut Vec<Finding>,
    report: &mut FileReport,
) {
    let ts = &lexed.tokens;
    for i in 0..ts.len() {
        let t = &ts[i];
        let in_test = mask[i];

        // (D) hash: nondeterministic iteration order.
        if ctx.deterministic
            && !in_test
            && t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            raw.push(Finding {
                rule: RuleId::Hash,
                line: t.line,
                message: format!(
                    "`{}` in a result-producing crate: iteration order is nondeterministic; \
                     use `BTreeMap`/`BTreeSet`, or escape a keyed-lookup-only use",
                    t.text
                ),
            });
        }

        // (D) clock: wall-clock reads outside bench.
        if ctx.deterministic
            && !in_test
            && t.kind == TokenKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
            && ts.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && ts.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            raw.push(Finding {
                rule: RuleId::Clock,
                line: t.line,
                message: format!("`{}::now()` outside the bench crate", t.text),
            });
        }

        // (D) float-eq: exact comparison against a float literal.
        if ctx.deterministic
            && !in_test
            && (t.is_punct("==") || t.is_punct("!="))
            && (i > 0 && ts[i - 1].kind == TokenKind::Float
                || ts.get(i + 1).is_some_and(|n| n.kind == TokenKind::Float))
        {
            raw.push(Finding {
                rule: RuleId::FloatEq,
                line: t.line,
                message: format!("float literal compared with `{}`", t.text),
            });
        }

        // (D) partial-cmp: the NaN-silencing unwrap_or(Equal) pattern.
        if t.is_ident("partial_cmp") {
            let window = &ts[i + 1..ts.len().min(i + 20)];
            if let Some(j) = window.iter().position(|n| n.is_ident("unwrap_or")) {
                if window[j..window.len().min(j + 12)].iter().any(|n| n.is_ident("Equal")) {
                    raw.push(Finding {
                        rule: RuleId::PartialCmp,
                        line: t.line,
                        message: "`partial_cmp(..).unwrap_or(Ordering::Equal)` silences NaN; \
                                  use `f64::total_cmp`"
                            .to_owned(),
                    });
                }
            }
        }

        // (P) panic-freedom.
        if ctx.panic_free && !in_test {
            let method_panic = t.is_punct(".")
                && ts.get(i + 1).is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                && ts.get(i + 2).is_some_and(|n| n.is_punct("("));
            let macro_panic = t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                && ts.get(i + 1).is_some_and(|n| n.is_punct("!"));
            if method_panic {
                raw.push(Finding {
                    rule: RuleId::Panic,
                    line: ts[i + 1].line,
                    message: format!("`.{}(..)` in a library crate", ts[i + 1].text),
                });
            }
            if macro_panic {
                raw.push(Finding {
                    rule: RuleId::Panic,
                    line: t.line,
                    message: format!("`{}!` in a library crate", t.text),
                });
            }
        }

        // (C) cast audit.
        if ctx.cast_audit
            && !in_test
            && t.is_ident("as")
            && ts.get(i + 1).is_some_and(|n| INT_TYPES.contains(&n.text.as_str()))
        {
            raw.push(Finding {
                rule: RuleId::Cast,
                line: t.line,
                message: format!(
                    "`as {}` on a model quantity: route through a `dkibam::checked` helper \
                     or escape with the losslessness argument",
                    ts[i + 1].text
                ),
            });
        }

        // (L) env: process-environment reads outside config load.
        if ctx.long_running
            && !in_test
            && t.is_ident("env")
            && ts.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && ts.get(i + 2).is_some_and(|n| ENV_READS.contains(&n.text.as_str()))
        {
            raw.push(Finding {
                rule: RuleId::Env,
                line: t.line,
                message: format!(
                    "`env::{}` in a long-running crate: read the environment once in \
                     config load and pass an explicit config value down",
                    ts[i + 2].text
                ),
            });
        }

        // (L) blocking-io: filesystem calls in serving code.
        if ctx.long_running && !in_test {
            let fs_call = t.is_ident("fs")
                && ts.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && ts.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident);
            let file_call = t.is_ident("File")
                && ts.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && ts.get(i + 2).is_some_and(|n| FILE_OPENS.contains(&n.text.as_str()));
            if fs_call || file_call {
                raw.push(Finding {
                    rule: RuleId::BlockingIo,
                    line: t.line,
                    message: format!(
                        "`{}::{}` in a long-running crate: blocking file I/O does not \
                         belong in request paths; move it to startup/exit or escape a \
                         one-shot site",
                        t.text,
                        ts[i + 2].text
                    ),
                });
            }
        }

        // (A) atomics audit: always on, tests included.
        if t.is_ident("Ordering")
            && ts.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && ts.get(i + 2).is_some_and(|n| ATOMIC_ORDERINGS.contains(&n.text.as_str()))
        {
            let documented = has_ordering_comment(lexed, t.line);
            if documented {
                report.ordering_documented += 1;
            } else {
                raw.push(Finding {
                    rule: RuleId::Ordering,
                    line: t.line,
                    message: format!(
                        "`Ordering::{}` without an adjacent `// ordering:` justification",
                        ts[i + 2].text
                    ),
                });
            }
        }
    }
}

/// Whether an `// ordering:` justification comment sits on `line` or the
/// line directly above it.
fn has_ordering_comment(lexed: &Lexed, line: u32) -> bool {
    [line, line.saturating_sub(1)]
        .iter()
        .any(|l| lexed.comments.get(l).is_some_and(|text| text.contains("ordering:")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> CrateContext {
        CrateContext { deterministic: true, panic_free: true, cast_audit: true, long_running: true }
    }

    fn rules_of(report: &FileReport) -> Vec<RuleId> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "
            fn lib() { let x: u32 = 1; }
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let v = vec![1].pop().unwrap(); let m = HashMap::new(); }
            }
        ";
        let report = lint_source(src, full());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn panic_sites_fire_outside_tests() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); unreachable!() }";
        let report = lint_source(src, full());
        assert_eq!(rules_of(&report), vec![RuleId::Panic; 4]);
    }

    #[test]
    fn escapes_suppress_and_are_counted() {
        let src = "
            // xlint: allow(panic) -- index validated at construction
            fn f() { x.unwrap(); }
            fn g() { y.unwrap(); } // xlint: allow(panic) -- same line form
        ";
        let report = lint_source(src, full());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.allows.len(), 2);
        assert_eq!(report.allows[0].reason, "index validated at construction");
    }

    #[test]
    fn escape_without_reason_is_a_finding() {
        let src = "
            // xlint: allow(panic)
            fn f() { x.unwrap(); }
        ";
        let report = lint_source(src, full());
        assert!(rules_of(&report).contains(&RuleId::Panic));
        assert!(rules_of(&report).contains(&RuleId::Escape));
    }

    #[test]
    fn doc_comments_are_not_escapes() {
        let src = "
            /// Write `// xlint: allow(panic) -- reason` above the site.
            fn f() { x.unwrap(); }
        ";
        let report = lint_source(src, full());
        // The doc comment neither suppresses the unwrap nor counts as a
        // malformed escape.
        assert_eq!(rules_of(&report), vec![RuleId::Panic]);
    }

    #[test]
    fn unused_escape_is_a_finding() {
        let src = "
            // xlint: allow(hash) -- stale justification
            fn f() {}
        ";
        let report = lint_source(src, full());
        assert_eq!(rules_of(&report), vec![RuleId::Escape]);
    }

    #[test]
    fn wrong_rule_escape_does_not_suppress() {
        let src = "
            // xlint: allow(hash) -- wrong rule
            fn f() { x.unwrap(); }
        ";
        let report = lint_source(src, full());
        assert!(rules_of(&report).contains(&RuleId::Panic));
    }

    #[test]
    fn partial_cmp_pattern_fires_across_lines() {
        let src = "
            fn f() {
                v.sort_by(|a, b| a
                    .partial_cmp(b)
                    .unwrap_or(std::cmp::Ordering::Equal));
            }
        ";
        let report = lint_source(src, CrateContext::aux());
        assert_eq!(rules_of(&report), vec![RuleId::PartialCmp]);
        // Plain partial_cmp without the unwrap_or(Equal) is fine.
        let ok = lint_source("fn f() { let o = a.partial_cmp(b); }", CrateContext::aux());
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn float_eq_fires_on_literal_comparisons_only() {
        let src = "fn f() { if x == 0.0 {} if 1.5 != y {} if a == b {} if n == 3 {} }";
        let report = lint_source(src, full());
        assert_eq!(rules_of(&report), vec![RuleId::FloatEq, RuleId::FloatEq]);
    }

    #[test]
    fn atomics_need_an_ordering_comment() {
        let undocumented = "fn f() { x.load(Ordering::Acquire); }";
        let report = lint_source(undocumented, CrateContext::aux());
        assert_eq!(rules_of(&report), vec![RuleId::Ordering]);

        let documented = "
            // ordering: Acquire pairs with the Release store in poison().
            fn f() { x.load(Ordering::Acquire); }
        ";
        let report = lint_source(documented, CrateContext::aux());
        assert!(report.findings.is_empty());
        assert_eq!(report.ordering_documented, 1);
        // std::cmp::Ordering::Equal is not an atomic ordering.
        let cmp = lint_source("fn f() -> Ordering { Ordering::Equal }", CrateContext::aux());
        assert!(cmp.findings.is_empty());
    }

    #[test]
    fn casts_fire_only_under_the_audit() {
        let src = "fn f(x: f64) -> u64 { x.round() as u64 }";
        assert_eq!(rules_of(&lint_source(src, full())), vec![RuleId::Cast]);
        assert!(lint_source(src, CrateContext::aux()).findings.is_empty());
        // `as f64` is not an integer cast.
        let widen = lint_source("fn f(x: u32) -> f64 { x as f64 }", full());
        assert!(widen.findings.is_empty());
    }

    #[test]
    fn clock_and_hash_fire_in_deterministic_crates() {
        let src = "
            use std::collections::HashMap;
            fn f() { let t = Instant::now(); }
        ";
        let report = lint_source(src, full());
        assert_eq!(rules_of(&report), vec![RuleId::Hash, RuleId::Clock]);
    }

    #[test]
    fn env_and_blocking_io_fire_only_in_long_running_crates() {
        let src = "
            fn f() -> Option<String> { std::env::var(\"HOME\").ok() }
            fn g() { let _ = std::fs::read_to_string(\"state.json\"); }
            fn h() { let _ = std::fs::File::open(\"x\"); }
        ";
        let report = lint_source(src, full());
        assert_eq!(
            rules_of(&report),
            vec![RuleId::Env, RuleId::BlockingIo, RuleId::BlockingIo, RuleId::BlockingIo]
        );
        // Outside the long-running scope neither rule applies.
        let quiet = lint_source(src, CrateContext { long_running: false, ..full() });
        assert!(quiet.findings.is_empty(), "{:?}", quiet.findings);
        // The compile-time env!() macro is not an environment read.
        let macro_use =
            lint_source("fn f() -> &'static str { env!(\"CARGO_MANIFEST_DIR\") }", full());
        assert!(macro_use.findings.is_empty(), "{:?}", macro_use.findings);
    }

    #[test]
    fn banned_names_in_strings_and_comments_do_not_fire() {
        let src = "
            // HashMap here is fine, and so is unwrap() in prose.
            fn f() { let s = \"HashMap::new().unwrap()\"; }
        ";
        let report = lint_source(src, full());
        assert!(report.findings.is_empty());
    }
}
