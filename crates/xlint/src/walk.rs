//! Workspace walking: crate classification, deterministic file
//! ordering, and report aggregation.

use crate::rules::{lint_source, Allow, CrateContext, Finding, RuleId};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Per-rule tallies.
#[derive(Debug, Default, Clone, Copy)]
pub struct RuleStats {
    /// Unsuppressed findings.
    pub violations: usize,
    /// Findings suppressed by a counted `xlint: allow` escape.
    pub allows: usize,
}

/// The aggregated lint result for the whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files lexed and linted.
    pub files_scanned: usize,
    /// Violations, keyed by workspace-relative path.
    pub findings: Vec<(String, Finding)>,
    /// Consumed escapes, keyed by workspace-relative path.
    pub allows: Vec<(String, Allow)>,
    /// Atomic `Ordering::` sites carrying a `// ordering:` comment.
    pub ordering_documented: usize,
}

impl Report {
    /// Per-rule violation/allow tallies, in [`RuleId::ALL`] order.
    #[must_use]
    pub fn per_rule(&self) -> BTreeMap<RuleId, RuleStats> {
        let mut map: BTreeMap<RuleId, RuleStats> =
            RuleId::ALL.iter().map(|&rule| (rule, RuleStats::default())).collect();
        for (_, finding) in &self.findings {
            if let Some(stats) = map.get_mut(&finding.rule) {
                stats.violations += 1;
            }
        }
        for (_, allow) in &self.allows {
            if let Some(stats) = map.get_mut(&allow.rule) {
                stats.allows += 1;
            }
        }
        map
    }

    /// Violations of real rules (everything except escape hygiene).
    #[must_use]
    pub fn hard_violations(&self) -> usize {
        self.findings.iter().filter(|(_, f)| f.rule != RuleId::Escape).count()
    }

    /// Escape-hygiene findings (malformed or unused `xlint: allow`):
    /// warnings by default, violations under `--deny-all`.
    #[must_use]
    pub fn hygiene_violations(&self) -> usize {
        self.findings.iter().filter(|(_, f)| f.rule == RuleId::Escape).count()
    }

    /// Renders the machine-readable stats JSON (the `BENCH_lint.json`
    /// artifact). Hand-rolled: the linter has no dependencies.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"xlint-stats-v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"violations\": {},\n", self.findings.len()));
        out.push_str(&format!("  \"allows\": {},\n", self.allows.len()));
        out.push_str(&format!("  \"ordering_documented\": {},\n", self.ordering_documented));
        out.push_str("  \"rules\": {\n");
        let per_rule = self.per_rule();
        let mut first = true;
        for (rule, stats) in &per_rule {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    \"{}\": {{\"violations\": {}, \"allows\": {}}}",
                rule, stats.violations, stats.allows
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Which rule groups a crate's `src/` tree is held to. Unknown crates get
/// the full determinism + panic-freedom treatment so future crates are
/// covered by default; `bench` (measurement, wall-clock by design) and
/// `xlint` itself are held only to the always-on rules.
#[must_use]
pub fn context_for_crate(name: &str) -> CrateContext {
    match name {
        "bench" | "xlint" => CrateContext::aux(),
        "kibam" | "dkibam" | "rv" | "core" | "relax" => CrateContext {
            deterministic: true,
            panic_free: true,
            cast_audit: true,
            long_running: false,
        },
        // The serving stack: worker loops here must not read the process
        // environment or do blocking file I/O per request.
        "engine" | "served" => CrateContext {
            deterministic: true,
            panic_free: true,
            cast_audit: false,
            long_running: true,
        },
        _ => CrateContext {
            deterministic: true,
            panic_free: true,
            cast_audit: false,
            long_running: false,
        },
    }
}

/// Recursively collects `.rs` files under `dir`, sorted by path so the
/// report order is deterministic.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|entry| entry.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // `fixtures/` holds deliberately-bad sources for the linter's
            // own self-test; `target/` is build output.
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if matches!(name.as_deref(), Some("fixtures" | "target")) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn lint_files(
    root: &Path,
    files: &[PathBuf],
    ctx: CrateContext,
    report: &mut Report,
) -> io::Result<()> {
    for path in files {
        let source = fs::read_to_string(path)?;
        let label = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        // `config.rs` is where a long-running crate is allowed to read the
        // environment and load files: startup only, by construction.
        let mut ctx = ctx;
        if path.file_name().is_some_and(|name| name == "config.rs") {
            ctx.long_running = false;
        }
        let file_report = lint_source(&source, ctx);
        report.files_scanned += 1;
        report.ordering_documented += file_report.ordering_documented;
        report.findings.extend(file_report.findings.into_iter().map(|f| (label.clone(), f)));
        report.allows.extend(file_report.allows.into_iter().map(|a| (label.clone(), a)));
    }
    Ok(())
}

/// Lints every crate under `<root>/crates` plus the workspace-level
/// `tests/` and `examples/` trees.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    crate_dirs.sort();
    for crate_dir in crate_dirs.iter().filter(|p| p.is_dir()) {
        let name =
            crate_dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let ctx = context_for_crate(&name);

        let mut src_files = Vec::new();
        collect_rs(&crate_dir.join("src"), &mut src_files)?;
        lint_files(root, &src_files, ctx, &mut report)?;

        // Integration tests, examples, and benches are auxiliary: only
        // the always-on rules apply there.
        for aux in ["tests", "examples", "benches"] {
            let mut aux_files = Vec::new();
            collect_rs(&crate_dir.join(aux), &mut aux_files)?;
            lint_files(root, &aux_files, CrateContext::aux(), &mut report)?;
        }
    }
    for aux in ["tests", "examples"] {
        let mut aux_files = Vec::new();
        collect_rs(&root.join(aux), &mut aux_files)?;
        lint_files(root, &aux_files, CrateContext::aux(), &mut report)?;
    }
    Ok(report)
}

/// Extracts the per-rule `allows` counts from a committed
/// `xlint-stats-v1` document (the `BENCH_lint.json` baseline). The parser
/// leans on the renderer's fixed line shape — `"<rule>": {"violations":
/// N, "allows": M}` — rather than a general JSON reader; the linter has
/// no dependencies, and [`Report::stats_json`] is the only producer.
///
/// Returns `None` when the document is not an `xlint-stats-v1` report or
/// carries no rules object.
#[must_use]
pub fn parse_stats_allows(json: &str) -> Option<BTreeMap<String, usize>> {
    if !json.contains("\"schema\": \"xlint-stats-v1\"") {
        return None;
    }
    let mut allows = BTreeMap::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((rule, rest)) = rest.split_once('"') else { continue };
        let Some(at) = rest.find("\"allows\": ") else { continue };
        let digits: String =
            rest[at + "\"allows\": ".len()..].chars().take_while(char::is_ascii_digit).collect();
        if let Ok(count) = digits.parse::<usize>() {
            allows.insert(rule.to_owned(), count);
        }
    }
    if allows.is_empty() {
        None
    } else {
        Some(allows)
    }
}

/// Compares a fresh report's per-rule `allows` counts against the
/// committed baseline. Any rule with more counted escapes than the
/// baseline is a regression: a new `xlint: allow` must land with a
/// regenerated `BENCH_lint.json`, so the diff shows up in review like a
/// bench regression would. Rules absent from the baseline count as 0.
#[must_use]
pub fn baseline_regressions(report: &Report, baseline: &BTreeMap<String, usize>) -> Vec<String> {
    let mut regressions = Vec::new();
    for (rule, stats) in report.per_rule() {
        let allowed = baseline.get(rule.name()).copied().unwrap_or(0);
        if stats.allows > allowed {
            regressions.push(format!(
                "rule `{}` has {} allow escape(s), baseline permits {allowed}: \
                 justify the new escape and regenerate the baseline with --stats-out",
                rule.name(),
                stats.allows
            ));
        }
    }
    regressions
}
