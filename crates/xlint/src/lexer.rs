//! A hand-rolled Rust lexer — just enough fidelity for token-level lint
//! rules: comments (captured, for escape/justification comments), string
//! and char literals (skipped, so a banned name inside a string never
//! fires), raw strings, lifetime-vs-char disambiguation, numeric literals
//! with a float/integer distinction, identifiers, and the handful of
//! multi-character operators the rules care about (`==`, `!=`, `::`, ...).
//!
//! The lexer is intentionally forgiving: malformed input never panics, it
//! just degrades into single-character punctuation tokens. The rule engine
//! only ever *matches* token patterns, so the worst a lexer gap can cause
//! is a missed finding — never a false build break.

use std::collections::BTreeMap;

/// The coarse kind of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `as`, `unwrap`, ...).
    Ident,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `2e-9`, `3.5f32`).
    Float,
    /// Punctuation / operator (`==`, `::`, `(`, `!`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text, verbatim (operators are normalized to their full
    /// multi-character spelling).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation `op`.
    #[must_use]
    pub fn is_punct(&self, op: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == op
    }
}

/// The result of lexing one source file: the token stream plus every
/// comment, grouped by the 1-based line it appears on (block comments
/// contribute to every line they span).
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment text per 1-based line (multiple comments on one line are
    /// concatenated with a space).
    pub comments: BTreeMap<u32, String>,
}

impl Lexed {
    fn push_comment(&mut self, line: u32, text: &str) {
        let slot = self.comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    }
}

/// Two- and three-character operators the lexer keeps whole. Order
/// matters: longest first, so `..=` wins over `..`.
const MULTI_OPS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `source` into tokens and per-line comments.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut pos = 0usize;
    let mut line: u32 = 1;

    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                let start = pos;
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
                out.push_comment(line, source[start..pos].trim());
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                // Nested block comment; each spanned line records its chunk.
                let mut depth = 1usize;
                pos += 2;
                let mut chunk_start = pos;
                while pos < bytes.len() && depth > 0 {
                    if bytes[pos] == b'\n' {
                        out.push_comment(line, source[chunk_start..pos].trim());
                        line += 1;
                        pos += 1;
                        chunk_start = pos;
                    } else if bytes[pos] == b'/' && bytes.get(pos + 1) == Some(&b'*') {
                        depth += 1;
                        pos += 2;
                    } else if bytes[pos] == b'*' && bytes.get(pos + 1) == Some(&b'/') {
                        depth -= 1;
                        pos += 2;
                    } else {
                        pos += 1;
                    }
                }
                let end = pos.min(bytes.len());
                if chunk_start < end {
                    out.push_comment(line, source[chunk_start..end].trim_end_matches("*/").trim());
                }
            }
            b'"' => pos = skip_string(bytes, pos, &mut line),
            b'\'' => pos = skip_char_or_lifetime(bytes, pos, &mut line),
            b'r' | b'b' if starts_string_prefix(bytes, pos) => {
                pos = skip_prefixed_string(bytes, pos, &mut line);
            }
            _ if c.is_ascii_digit() => {
                let (end, kind) = lex_number(bytes, pos);
                out.tokens.push(Token { kind, text: source[pos..end].to_owned(), line });
                pos = end;
            }
            _ if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                let end = ident_end(bytes, pos);
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[pos..end].to_owned(),
                    line,
                });
                pos = end;
            }
            _ => {
                let rest = &source[pos..];
                let op = MULTI_OPS.iter().find(|op| rest.starts_with(**op));
                let text = op.map_or_else(|| &source[pos..pos + 1], |op| *op);
                out.tokens.push(Token { kind: TokenKind::Punct, text: text.to_owned(), line });
                pos += text.len();
            }
        }
    }
    out
}

fn ident_end(bytes: &[u8], start: usize) -> usize {
    let mut pos = start;
    while pos < bytes.len()
        && (bytes[pos] == b'_' || bytes[pos].is_ascii_alphanumeric() || bytes[pos] >= 0x80)
    {
        pos += 1;
    }
    pos
}

/// Whether `r`/`b` at `pos` starts a (raw/byte) string or byte-char
/// literal rather than an identifier.
fn starts_string_prefix(bytes: &[u8], pos: usize) -> bool {
    let next = bytes.get(pos + 1).copied();
    match bytes[pos] {
        b'b' => match next {
            Some(b'"' | b'\'') => true,
            Some(b'r') => {
                matches!(bytes.get(pos + 2), Some(b'"' | b'#')) && raw_quote_follows(bytes, pos + 2)
            }
            _ => false,
        },
        b'r' => matches!(next, Some(b'"' | b'#')) && raw_quote_follows(bytes, pos + 1),
        _ => false,
    }
}

/// From a position at `"` or the first `#` of a raw-string opener, whether
/// a quote actually follows the `#` run (distinguishes `r#ident` raw
/// identifiers from `r#"..."#` raw strings).
fn raw_quote_follows(bytes: &[u8], mut pos: usize) -> bool {
    while bytes.get(pos) == Some(&b'#') {
        pos += 1;
    }
    bytes.get(pos) == Some(&b'"')
}

fn skip_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut pos = start + 1;
    while pos < bytes.len() {
        match bytes[pos] {
            b'\\' => pos += 2,
            b'"' => return pos + 1,
            b'\n' => {
                *line += 1;
                pos += 1;
            }
            _ => pos += 1,
        }
    }
    pos
}

fn skip_prefixed_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut pos = start;
    while matches!(bytes.get(pos), Some(b'r' | b'b')) {
        pos += 1;
    }
    if bytes.get(pos) == Some(&b'\'') {
        return skip_char_or_lifetime(bytes, pos, line);
    }
    let mut hashes = 0usize;
    while bytes.get(pos) == Some(&b'#') {
        hashes += 1;
        pos += 1;
    }
    if bytes.get(pos) != Some(&b'"') {
        return start + 1; // Not a string after all; re-lex as ident.
    }
    if hashes == 0 {
        return skip_string(bytes, pos, line);
    }
    pos += 1;
    while pos < bytes.len() {
        if bytes[pos] == b'\n' {
            *line += 1;
            pos += 1;
        } else if bytes[pos] == b'"'
            && bytes[pos + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            return pos + 1 + hashes;
        } else {
            pos += 1;
        }
    }
    pos
}

/// Skips a char literal (`'a'`, `'\n'`, `'\u{1F600}'`) or a lifetime
/// (`'a`, `'static`), returning the position after it.
fn skip_char_or_lifetime(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let next = bytes.get(start + 1).copied();
    let after = bytes.get(start + 2).copied();
    let is_lifetime =
        matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic()) && after != Some(b'\'');
    if is_lifetime {
        return ident_end(bytes, start + 1);
    }
    // Char literal: scan to the closing quote, honoring escapes.
    let mut pos = start + 1;
    while pos < bytes.len() {
        match bytes[pos] {
            b'\\' => pos += 2,
            b'\'' => return pos + 1,
            b'\n' => {
                // Stray quote (macro `'` or malformed input): bail out so a
                // lexer gap cannot swallow the rest of the file.
                *line += 1;
                return pos;
            }
            _ => pos += 1,
        }
    }
    pos
}

fn lex_number(bytes: &[u8], start: usize) -> (usize, TokenKind) {
    let mut pos = start;
    let radix_prefixed = bytes[pos] == b'0'
        && matches!(bytes.get(pos + 1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
    if radix_prefixed {
        pos += 2;
        while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
            pos += 1;
        }
        return (pos, TokenKind::Int);
    }
    let mut kind = TokenKind::Int;
    while pos < bytes.len() && (bytes[pos].is_ascii_digit() || bytes[pos] == b'_') {
        pos += 1;
    }
    // Fraction: only when a digit follows the dot (so `x.0` tuple access
    // and `1..n` ranges stay punctuation).
    if bytes.get(pos) == Some(&b'.') && matches!(bytes.get(pos + 1), Some(c) if c.is_ascii_digit())
    {
        kind = TokenKind::Float;
        pos += 1;
        while pos < bytes.len() && (bytes[pos].is_ascii_digit() || bytes[pos] == b'_') {
            pos += 1;
        }
    }
    // Exponent.
    if matches!(bytes.get(pos), Some(b'e' | b'E')) {
        let mut exp = pos + 1;
        if matches!(bytes.get(exp), Some(b'+' | b'-')) {
            exp += 1;
        }
        if matches!(bytes.get(exp), Some(c) if c.is_ascii_digit()) {
            kind = TokenKind::Float;
            pos = exp;
            while pos < bytes.len() && (bytes[pos].is_ascii_digit() || bytes[pos] == b'_') {
                pos += 1;
            }
        }
    }
    // Type suffix (`u32`, `f64`, ...): a leading `f` makes it a float.
    if matches!(bytes.get(pos), Some(c) if c.is_ascii_alphabetic()) {
        if bytes[pos] == b'f' {
            kind = TokenKind::Float;
        }
        pos = ident_end(bytes, pos);
    }
    (pos, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_strings_and_comments() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"HashMap"#;
            let b = b"HashMap";
            let real = HashMap::new();
        "##;
        let names = idents(src);
        assert_eq!(names.iter().filter(|n| *n == "HashMap").count(), 1);
    }

    #[test]
    fn comments_are_captured_per_line() {
        let lexed = lex("let x = 1; // xlint: allow(panic) -- reason\n// ordering: pairs\n");
        assert!(lexed.comments[&1].contains("xlint: allow(panic)"));
        assert!(lexed.comments[&2].contains("ordering:"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let nl = '\\n';";
        let lexed = lex(src);
        // The idents survive and no token stream corruption occurs.
        assert!(lexed.tokens.iter().any(|t| t.is_ident("str")));
        assert!(!lexed.tokens.iter().any(|t| t.text.contains('\'')));
    }

    #[test]
    fn float_and_int_literals_are_distinguished() {
        let lexed = lex("let a = 1.5; let b = 2; let c = 3e-9; let d = 4f64; let e = 0x1E; \
                         let f = x.0; let g = 1..5; let h = 1_000u64;");
        let kinds: Vec<(String, TokenKind)> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| (t.text.clone(), t.kind))
            .collect();
        let kind_of = |text: &str| kinds.iter().find(|(t, _)| t == text).map(|(_, k)| *k);
        assert_eq!(kind_of("1.5"), Some(TokenKind::Float));
        assert_eq!(kind_of("2"), Some(TokenKind::Int));
        assert_eq!(kind_of("3e-9"), Some(TokenKind::Float));
        assert_eq!(kind_of("4f64"), Some(TokenKind::Float));
        assert_eq!(kind_of("0x1E"), Some(TokenKind::Int));
        assert_eq!(kind_of("1_000u64"), Some(TokenKind::Int));
        // Tuple access and ranges stay integers, not floats.
        assert_eq!(kind_of("0"), Some(TokenKind::Int));
        assert_eq!(kind_of("1"), Some(TokenKind::Int));
    }

    #[test]
    fn multi_char_operators_stay_whole() {
        let lexed = lex("a == b; c != d; E::F; g -> h; i <= j;");
        let ops: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        for op in ["==", "!=", "::", "->", "<="] {
            assert!(ops.contains(&op), "missing {op} in {ops:?}");
        }
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\nb\n/* block\ncomment */\nc";
        let lexed = lex(src);
        let line_of = |name: &str| lexed.tokens.iter().find(|t| t.is_ident(name)).map(|t| t.line);
        assert_eq!(line_of("a"), Some(1));
        assert_eq!(line_of("b"), Some(4));
        assert_eq!(line_of("c"), Some(7));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let lexed = lex("let r#type = 1; let ok = r#\"raw\"#;");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("r")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("type")));
        assert!(!lexed.tokens.iter().any(|t| t.text.contains("raw")));
    }
}
