//! Workspace invariant linter.
//!
//! Every claim this repository makes — bit-identical lifetimes across
//! pruned and reference searches, batched == scalar kernels, reproducible
//! golden tables — rests on invariants that `clippy` cannot see: total
//! float orderings, deterministic iteration, lossless state-word packing,
//! correctly ordered atomics in the hand-rolled worker pool. `xlint` makes
//! those invariants machine-checked: a hand-rolled Rust lexer (comments,
//! strings, raw strings, char-vs-lifetime disambiguation — no `syn`, no
//! dependencies at all) feeds a token-level rule engine that walks the
//! workspace and enforces the repo-specific rule set:
//!
//! | Rule id       | Group | What it flags |
//! |---------------|-------|---------------|
//! | `hash`        | D     | `HashMap`/`HashSet` in result-producing crates (iteration order is nondeterministic — use `BTreeMap`/`BTreeSet` or justify a keyed-lookup-only use) |
//! | `clock`       | D     | `Instant::now`/`SystemTime::now` outside the `bench` crate |
//! | `float-eq`    | D     | `==`/`!=` against a float literal |
//! | `partial-cmp` | D     | `partial_cmp(..).unwrap_or(Ordering::Equal)` — NaN-silencing; use `f64::total_cmp` |
//! | `panic`       | P     | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in library crates outside `#[cfg(test)]` |
//! | `cast`        | C     | lossy `as <integer>` casts in the numeric model crates — route through `dkibam::checked` helpers |
//! | `ordering`    | A     | an atomic `Ordering::...` use site without an adjacent `// ordering:` justification comment |
//!
//! A site that is genuinely sound can carry an **escape comment** on the
//! same line or the line directly above:
//!
//! ```text
//! // xlint: allow(panic) -- the fleet validated this index at construction
//! ```
//!
//! The reason after ` -- ` is mandatory; escapes are counted and reported
//! (see [`Report::allows`]) so reviewers can audit the full list, and an
//! escape that no longer suppresses anything is itself flagged so stale
//! justifications cannot accumulate.

pub mod lexer;
pub mod rules;
pub mod walk;

pub use rules::{lint_source, CrateContext, FileReport, Finding, RuleId};
pub use walk::{lint_workspace, Report};
