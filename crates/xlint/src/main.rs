//! `xlint` CLI: lint the workspace, print findings and escape tallies,
//! optionally write the stats JSON artifact.
//!
//! ```text
//! cargo run -p xlint                      # lint, warn on escape hygiene
//! cargo run -p xlint -- --deny-all        # escape-hygiene findings fail too
//! cargo run -p xlint -- --stats-out BENCH_lint.json
//! cargo run -p xlint -- --baseline BENCH_lint.json
//! cargo run -p xlint -- --root /path/to/workspace
//! ```
//!
//! Exit status is 1 when any rule violation remains (plus, under
//! `--deny-all`, when any `xlint: allow` escape is malformed or unused,
//! or when `--baseline` finds a rule with more counted allow escapes
//! than the committed stats document), 0 otherwise.

use std::path::PathBuf;
use std::process::ExitCode;
use xlint::rules::RuleId;
use xlint::walk::{baseline_regressions, lint_workspace, parse_stats_allows};

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut stats_out: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--stats-out" => match argv.next() {
                Some(path) => stats_out = Some(PathBuf::from(path)),
                None => return usage("--stats-out needs a path"),
            },
            "--baseline" => match argv.next() {
                Some(path) => baseline_path = Some(PathBuf::from(path)),
                None => return usage("--baseline needs a path"),
            },
            "--root" => match argv.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage("--root needs a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default to the workspace this binary was built from: xlint lives at
    // <root>/crates/xlint.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));

    // Load the committed baseline before anything is overwritten:
    // `--stats-out` and `--baseline` may legitimately name the same file.
    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match parse_stats_allows(&text) {
                Some(allows) => Some(allows),
                None => {
                    eprintln!("xlint: {} is not an xlint-stats-v1 document", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(err) => {
                eprintln!("xlint: failed to read baseline {}: {err}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("xlint: failed to walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for (path, finding) in &report.findings {
        let severity =
            if finding.rule == RuleId::Escape && !deny_all { "warning" } else { "violation" };
        println!("{path}:{}: {severity}[{}] {}", finding.line, finding.rule, finding.message);
    }

    let per_rule = report.per_rule();
    println!("xlint: {} files scanned", report.files_scanned);
    for (rule, stats) in &per_rule {
        if stats.violations > 0 || stats.allows > 0 {
            println!(
                "xlint:   {:<12} {} violation(s), {} allow(s)",
                rule.name(),
                stats.violations,
                stats.allows
            );
        }
    }
    println!(
        "xlint: {} violation(s), {} counted allow escape(s), {} documented atomic ordering(s)",
        report.findings.len(),
        report.allows.len(),
        report.ordering_documented
    );

    if let Some(path) = stats_out {
        if let Err(err) = std::fs::write(&path, report.stats_json()) {
            eprintln!("xlint: failed to write {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!("xlint: stats written to {}", path.display());
    }

    let mut regressions = 0;
    if let Some(baseline) = &baseline {
        for regression in baseline_regressions(&report, baseline) {
            println!("xlint: violation[baseline] {regression}");
            regressions += 1;
        }
        if regressions == 0 {
            println!("xlint: allow escapes match the committed baseline");
        }
    }

    let failing = report.hard_violations()
        + regressions
        + if deny_all { report.hygiene_violations() } else { 0 };
    if failing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("xlint: {problem}");
    eprintln!("usage: xlint [--deny-all] [--stats-out FILE] [--baseline FILE] [--root DIR]");
    ExitCode::from(2)
}
