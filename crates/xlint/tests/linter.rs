//! Linter self-test: the seeded fixture must trip every rule, and the
//! real workspace must be clean under `--deny-all` semantics.

use std::path::PathBuf;
use xlint::rules::{lint_source, CrateContext, RuleId};
use xlint::walk::{baseline_regressions, context_for_crate, lint_workspace, parse_stats_allows};

const FIXTURE: &str = include_str!("fixtures/bad.rs");

fn full() -> CrateContext {
    CrateContext { deterministic: true, panic_free: true, cast_audit: true, long_running: true }
}

#[test]
fn fixture_trips_every_rule() {
    let report = lint_source(FIXTURE, full());
    for rule in RuleId::ALL {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "rule `{rule}` did not fire on the seeded fixture; findings: {:?}",
            report.findings
        );
    }
    // The stale escape must be flagged as hygiene, not counted as an allow.
    assert!(report.allows.is_empty(), "{:?}", report.allows);
}

#[test]
fn fixture_is_quiet_outside_its_scopes() {
    // Under the auxiliary context only the always-on rules remain.
    let report = lint_source(FIXTURE, CrateContext::aux());
    let fired: Vec<RuleId> = report.findings.iter().map(|f| f.rule).collect();
    assert!(fired.contains(&RuleId::PartialCmp));
    assert!(fired.contains(&RuleId::Ordering));
    for banned in [
        RuleId::Hash,
        RuleId::Clock,
        RuleId::FloatEq,
        RuleId::Panic,
        RuleId::Cast,
        RuleId::Env,
        RuleId::BlockingIo,
    ] {
        assert!(!fired.contains(&banned), "`{banned}` fired under aux context");
    }
}

#[test]
fn crate_classification_matches_the_rule_table() {
    for name in ["kibam", "dkibam", "rv", "core"] {
        let ctx = context_for_crate(name);
        assert!(ctx.deterministic && ctx.panic_free && ctx.cast_audit, "{name}");
        assert!(!ctx.long_running, "{name}");
    }
    // The serving stack carries the long-running-process rules on top.
    for name in ["engine", "served"] {
        let ctx = context_for_crate(name);
        assert!(ctx.deterministic && ctx.panic_free && !ctx.cast_audit, "{name}");
        assert!(ctx.long_running, "{name}");
    }
    for name in ["workload", "pta", "some-future-crate"] {
        let ctx = context_for_crate(name);
        assert!(ctx.deterministic && ctx.panic_free && !ctx.cast_audit, "{name}");
        assert!(!ctx.long_running, "{name}");
    }
    for name in ["bench", "xlint"] {
        let ctx = context_for_crate(name);
        assert!(!ctx.deterministic && !ctx.panic_free && !ctx.cast_audit, "{name}");
        assert!(!ctx.long_running, "{name}");
    }
}

#[test]
fn workspace_is_clean_under_deny_all() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = lint_workspace(&root).expect("workspace walk");
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
    let violations: Vec<String> = report
        .findings
        .iter()
        .map(|(path, f)| format!("{path}:{}: [{}] {}", f.line, f.rule, f.message))
        .collect();
    assert!(
        violations.is_empty(),
        "workspace has {} xlint violation(s):\n{}",
        violations.len(),
        violations.join("\n")
    );
    // The runner.rs pool atomics are the documented exemplar; if this hits
    // zero the `// ordering:` comments were lost.
    assert!(report.ordering_documented >= 4, "{}", report.ordering_documented);
}

#[test]
fn stats_json_is_well_formed() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = lint_workspace(&root).expect("workspace walk");
    let json = report.stats_json();
    assert!(json.contains("\"schema\": \"xlint-stats-v1\""));
    for rule in RuleId::ALL {
        assert!(json.contains(&format!("\"{rule}\"")), "missing rule `{rule}` in {json}");
    }
    // Balanced braces — cheap sanity check on the hand-rolled writer.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes);
}

#[test]
fn baseline_diff_catches_new_allow_escapes() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = lint_workspace(&root).expect("workspace walk");
    // The report's own stats round-trip as a baseline with no regressions.
    let baseline = parse_stats_allows(&report.stats_json()).expect("stats parse as a baseline");
    assert!(baseline_regressions(&report, &baseline).is_empty());
    // Dropping one rule's count from the baseline makes that rule regress.
    let inflated: Vec<(String, usize)> = baseline
        .iter()
        .filter(|(_, count)| **count > 0)
        .map(|(rule, count)| (rule.clone(), count - 1))
        .collect();
    assert!(!inflated.is_empty(), "the workspace should carry at least one counted escape");
    let mut tightened = baseline.clone();
    for (rule, count) in &inflated {
        tightened.insert(rule.clone(), *count);
    }
    let regressions = baseline_regressions(&report, &tightened);
    assert_eq!(regressions.len(), inflated.len(), "{regressions:?}");
    // A non-stats document is rejected rather than treated as all-zeros.
    assert!(parse_stats_allows("{\"schema\": \"serve-bench-v1\"}").is_none());
}
