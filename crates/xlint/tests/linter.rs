//! Linter self-test: the seeded fixture must trip every rule, and the
//! real workspace must be clean under `--deny-all` semantics.

use std::path::PathBuf;
use xlint::rules::{lint_source, CrateContext, RuleId};
use xlint::walk::{context_for_crate, lint_workspace};

const FIXTURE: &str = include_str!("fixtures/bad.rs");

fn full() -> CrateContext {
    CrateContext { deterministic: true, panic_free: true, cast_audit: true }
}

#[test]
fn fixture_trips_every_rule() {
    let report = lint_source(FIXTURE, full());
    for rule in RuleId::ALL {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "rule `{rule}` did not fire on the seeded fixture; findings: {:?}",
            report.findings
        );
    }
    // The stale escape must be flagged as hygiene, not counted as an allow.
    assert!(report.allows.is_empty(), "{:?}", report.allows);
}

#[test]
fn fixture_is_quiet_outside_its_scopes() {
    // Under the auxiliary context only the always-on rules remain.
    let report = lint_source(FIXTURE, CrateContext::aux());
    let fired: Vec<RuleId> = report.findings.iter().map(|f| f.rule).collect();
    assert!(fired.contains(&RuleId::PartialCmp));
    assert!(fired.contains(&RuleId::Ordering));
    for banned in [RuleId::Hash, RuleId::Clock, RuleId::FloatEq, RuleId::Panic, RuleId::Cast] {
        assert!(!fired.contains(&banned), "`{banned}` fired under aux context");
    }
}

#[test]
fn crate_classification_matches_the_rule_table() {
    for name in ["kibam", "dkibam", "rv", "core"] {
        let ctx = context_for_crate(name);
        assert!(ctx.deterministic && ctx.panic_free && ctx.cast_audit, "{name}");
    }
    for name in ["engine", "workload", "pta", "served-someday"] {
        let ctx = context_for_crate(name);
        assert!(ctx.deterministic && ctx.panic_free && !ctx.cast_audit, "{name}");
    }
    for name in ["bench", "xlint"] {
        let ctx = context_for_crate(name);
        assert!(!ctx.deterministic && !ctx.panic_free && !ctx.cast_audit, "{name}");
    }
}

#[test]
fn workspace_is_clean_under_deny_all() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = lint_workspace(&root).expect("workspace walk");
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
    let violations: Vec<String> = report
        .findings
        .iter()
        .map(|(path, f)| format!("{path}:{}: [{}] {}", f.line, f.rule, f.message))
        .collect();
    assert!(
        violations.is_empty(),
        "workspace has {} xlint violation(s):\n{}",
        violations.len(),
        violations.join("\n")
    );
    // The runner.rs pool atomics are the documented exemplar; if this hits
    // zero the `// ordering:` comments were lost.
    assert!(report.ordering_documented >= 4, "{}", report.ordering_documented);
}

#[test]
fn stats_json_is_well_formed() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = lint_workspace(&root).expect("workspace walk");
    let json = report.stats_json();
    assert!(json.contains("\"schema\": \"xlint-stats-v1\""));
    for rule in RuleId::ALL {
        assert!(json.contains(&format!("\"{rule}\"")), "missing rule `{rule}` in {json}");
    }
    // Balanced braces — cheap sanity check on the hand-rolled writer.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes);
}
