//! Seeded-violation fixture for the xlint self-test. Every rule must
//! fire at least once on this file; it is excluded from workspace walks
//! (anything under a `fixtures/` directory is skipped).
#![allow(unused)]

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

fn nondeterministic_lookup() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    m.len() + s.len()
}

fn wall_clock() -> std::time::Instant {
    Instant::now()
}

fn float_equality(x: f64) -> bool {
    x == 0.0
}

fn nan_silencing(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

fn panics(v: Vec<u32>) -> u32 {
    let first = v.first().unwrap();
    let last = v.last().expect("nonempty");
    if *first > *last {
        panic!("unsorted");
    }
    *first
}

fn lossy_cast(charge: f64) -> u64 {
    charge.round() as u64
}

fn undocumented_atomic(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::Relaxed)
}

fn reads_environment() -> Option<String> {
    std::env::var("HOME").ok()
}

fn blocking_io_in_worker() -> std::io::Result<String> {
    std::fs::read_to_string("state.json")
}

// xlint: allow(hash) -- stale escape: suppresses nothing, must be flagged
fn clean() {}
