use crate::{KibamError, TwoWellState};

/// Parameters of a Kinetic Battery Model battery.
///
/// A battery is described by three parameters (Section 2.1 of the paper):
///
/// * `capacity` — the total charge `C` stored in a full battery, in A·min;
/// * `c` — the fraction of the capacity held in the *available-charge* well
///   (the rest, `1 - c`, is bound charge);
/// * `k_prime` — the normalised valve conductance `k' = k / (c (1 - c))`, in
///   1/min, which governs how fast bound charge becomes available.
///
/// The paper's experiments use the lithium-ion cell of the Itsy pocket
/// computer with `c = 0.166` and `k' = 0.122 / min` in two capacities:
/// [`BatteryParams::itsy_b1`] (5.5 A·min) and [`BatteryParams::itsy_b2`]
/// (11 A·min).
///
/// # Example
///
/// ```
/// use kibam::BatteryParams;
///
/// # fn main() -> Result<(), kibam::KibamError> {
/// let battery = BatteryParams::new(5.5, 0.166, 0.122)?;
/// assert_eq!(battery.capacity(), 5.5);
/// // The raw valve conductance k = k' * c * (1 - c).
/// assert!((battery.k() - 0.122 * 0.166 * 0.834).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatteryParams {
    capacity: f64,
    c: f64,
    k_prime: f64,
}

/// The well fraction `c` of the Itsy lithium-ion cell used in the paper.
pub const ITSY_C: f64 = 0.166;
/// The rate constant `k'` (1/min) of the Itsy lithium-ion cell used in the paper.
pub const ITSY_K_PRIME: f64 = 0.122;
/// Capacity (A·min) of battery B1 of the paper.
pub const ITSY_B1_CAPACITY: f64 = 5.5;
/// Capacity (A·min) of battery B2 of the paper.
pub const ITSY_B2_CAPACITY: f64 = 11.0;

impl BatteryParams {
    /// Creates battery parameters after validating them.
    ///
    /// # Errors
    ///
    /// Returns [`KibamError::InvalidCapacity`] if `capacity` is not positive
    /// and finite, [`KibamError::InvalidWellFraction`] if `c` does not lie
    /// strictly between 0 and 1, and [`KibamError::InvalidRateConstant`] if
    /// `k_prime` is not positive and finite.
    pub fn new(capacity: f64, c: f64, k_prime: f64) -> Result<Self, KibamError> {
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(KibamError::InvalidCapacity { value: capacity });
        }
        if !(c.is_finite() && c > 0.0 && c < 1.0) {
            return Err(KibamError::InvalidWellFraction { value: c });
        }
        if !(k_prime.is_finite() && k_prime > 0.0) {
            return Err(KibamError::InvalidRateConstant { value: k_prime });
        }
        Ok(Self { capacity, c, k_prime })
    }

    /// The battery **B1** of the paper: 5.5 A·min, `c = 0.166`,
    /// `k' = 0.122 / min` (Itsy pocket-computer lithium-ion cell).
    #[must_use]
    pub fn itsy_b1() -> Self {
        Self { capacity: ITSY_B1_CAPACITY, c: ITSY_C, k_prime: ITSY_K_PRIME }
    }

    /// The battery **B2** of the paper: 11 A·min, `c = 0.166`,
    /// `k' = 0.122 / min`.
    #[must_use]
    pub fn itsy_b2() -> Self {
        Self { capacity: ITSY_B2_CAPACITY, c: ITSY_C, k_prime: ITSY_K_PRIME }
    }

    /// Total capacity `C` in A·min.
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Fraction `c` of the capacity held in the available-charge well.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Normalised rate constant `k' = k / (c (1 - c))` in 1/min.
    #[must_use]
    pub fn k_prime(&self) -> f64 {
        self.k_prime
    }

    /// Raw valve conductance `k = k' · c · (1 - c)` in 1/min.
    #[must_use]
    pub fn k(&self) -> f64 {
        self.k_prime * self.c * (1.0 - self.c)
    }

    /// The steady-state *recovery gain* `(1 - c) / (c · k')` in minutes: the
    /// bound-charge deficit (unavailable charge) per ampere of sustained
    /// load once the height difference has settled, `lim_{t→∞} (1-c)·δ(t)/I`.
    ///
    /// This is the KiBaM side of cross-model parameter fits: a battery model
    /// with a different unavailable-charge law (e.g. the Rakhmatov–Vrudhula
    /// diffusion model of the `rv` crate) reproduces the same low-rate
    /// rate-capacity loss exactly when its own steady-state gain matches
    /// this value.
    #[must_use]
    pub fn recovery_gain(&self) -> f64 {
        (1.0 - self.c) / (self.c * self.k_prime)
    }

    /// Returns a copy of these parameters with a different capacity.
    ///
    /// This is convenient for capacity-scaling studies (Section 6 of the
    /// paper discusses a ten-fold larger battery).
    ///
    /// # Errors
    ///
    /// Returns [`KibamError::InvalidCapacity`] if `capacity` is not positive
    /// and finite.
    pub fn with_capacity(&self, capacity: f64) -> Result<Self, KibamError> {
        Self::new(capacity, self.c, self.k_prime)
    }

    /// The state of a freshly charged battery: the available-charge well
    /// holds `c · C`, the bound-charge well `(1 - c) · C`.
    #[must_use]
    pub fn full_state(&self) -> TwoWellState {
        TwoWellState::new_unchecked(self.c * self.capacity, (1.0 - self.c) * self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_values() {
        let b1 = BatteryParams::itsy_b1();
        assert_eq!(b1.capacity(), 5.5);
        assert_eq!(b1.c(), 0.166);
        assert_eq!(b1.k_prime(), 0.122);
        let b2 = BatteryParams::itsy_b2();
        assert_eq!(b2.capacity(), 11.0);
        assert_eq!(b2.c(), b1.c());
        assert_eq!(b2.k_prime(), b1.k_prime());
    }

    #[test]
    fn new_rejects_invalid_capacity() {
        assert!(matches!(
            BatteryParams::new(0.0, 0.5, 1.0),
            Err(KibamError::InvalidCapacity { .. })
        ));
        assert!(matches!(
            BatteryParams::new(-1.0, 0.5, 1.0),
            Err(KibamError::InvalidCapacity { .. })
        ));
        assert!(matches!(
            BatteryParams::new(f64::NAN, 0.5, 1.0),
            Err(KibamError::InvalidCapacity { .. })
        ));
        assert!(matches!(
            BatteryParams::new(f64::INFINITY, 0.5, 1.0),
            Err(KibamError::InvalidCapacity { .. })
        ));
    }

    #[test]
    fn new_rejects_invalid_well_fraction() {
        for c in [0.0, 1.0, -0.1, 1.1, f64::NAN] {
            assert!(matches!(
                BatteryParams::new(1.0, c, 1.0),
                Err(KibamError::InvalidWellFraction { .. })
            ));
        }
    }

    #[test]
    fn new_rejects_invalid_rate_constant() {
        for k in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                BatteryParams::new(1.0, 0.5, k),
                Err(KibamError::InvalidRateConstant { .. })
            ));
        }
    }

    #[test]
    fn k_is_consistent_with_k_prime() {
        let p = BatteryParams::new(2.0, 0.25, 0.4).unwrap();
        assert!((p.k() - 0.4 * 0.25 * 0.75).abs() < 1e-15);
    }

    #[test]
    fn recovery_gain_matches_the_steady_state_height_difference() {
        // Under a sustained current I the height difference settles at
        // δ = I / (c·k'), so the unavailable charge settles at
        // (1-c)·δ = I·(1-c)/(c·k') — the gain times the current.
        let b1 = BatteryParams::itsy_b1();
        let expected = (1.0 - 0.166) / (0.166 * 0.122);
        assert!((b1.recovery_gain() - expected).abs() < 1e-12);
        // Capacity does not enter the gain: B2 shares it.
        assert_eq!(b1.recovery_gain(), BatteryParams::itsy_b2().recovery_gain());
    }

    #[test]
    fn full_state_splits_capacity_by_c() {
        let p = BatteryParams::itsy_b1();
        let s = p.full_state();
        assert!((s.available() - 0.166 * 5.5).abs() < 1e-12);
        assert!((s.bound() - 0.834 * 5.5).abs() < 1e-12);
        assert!((s.total() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn with_capacity_scales_only_capacity() {
        let b1 = BatteryParams::itsy_b1();
        let b10 = b1.with_capacity(55.0).unwrap();
        assert_eq!(b10.capacity(), 55.0);
        assert_eq!(b10.c(), b1.c());
        assert_eq!(b10.k_prime(), b1.k_prime());
        assert!(b1.with_capacity(-3.0).is_err());
    }
}
