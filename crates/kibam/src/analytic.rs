//! Closed-form solution of the KiBaM under constant discharge current.
//!
//! In the transformed coordinates of Eq. 2 the model becomes, for a constant
//! current `I` over an interval of length `t`:
//!
//! ```text
//! δ(t) = δ(0)·e^{-k't} + (I / (c·k'))·(1 - e^{-k't})
//! γ(t) = γ(0) - I·t
//! ```
//!
//! and the battery is empty when `γ(t) = (1 - c)·δ(t)` (Eq. 3). This module
//! provides the state evolution and a robust first-crossing solver for the
//! time to empty, which together form the basis for the piecewise-constant
//! lifetime computation in [`crate::lifetime`].

use crate::{BatteryParams, KibamError, TransformedState, CHARGE_EPSILON};

/// Number of scan intervals used to bracket the first empty-crossing before
/// bisection refines it.
const SCAN_STEPS: usize = 4096;
/// Number of bisection iterations; 80 halvings reduce any bracket far below
/// f64 resolution.
const BISECTION_ITERS: usize = 80;

/// Evolves a battery state under a constant current `current` for `duration`
/// minutes, using the exact analytical solution.
///
/// A zero current models an idle (recovery) period: the total charge stays
/// constant while the height difference relaxes towards zero.
///
/// # Errors
///
/// Returns [`KibamError::InvalidCurrent`] for negative or non-finite currents
/// and [`KibamError::InvalidDuration`] for negative or non-finite durations.
///
/// # Example
///
/// ```
/// use kibam::{analytic::evolve, BatteryParams, TransformedState};
///
/// # fn main() -> Result<(), kibam::KibamError> {
/// let b1 = BatteryParams::itsy_b1();
/// let full = TransformedState::full(&b1);
/// // One minute at 500 mA.
/// let after = evolve(&b1, full, 0.5, 1.0)?;
/// assert!((after.gamma - 5.0).abs() < 1e-12);
/// assert!(after.delta > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn evolve(
    params: &BatteryParams,
    state: TransformedState,
    current: f64,
    duration: f64,
) -> Result<TransformedState, KibamError> {
    validate_current(current)?;
    validate_duration(duration)?;
    Ok(evolve_unchecked(params, state, current, duration))
}

/// Evolution without argument validation; shared by the scanning routines.
pub(crate) fn evolve_unchecked(
    params: &BatteryParams,
    state: TransformedState,
    current: f64,
    duration: f64,
) -> TransformedState {
    // xlint: allow(float-eq) -- exact-zero duration is the no-op sentinel
    if duration == 0.0 {
        return state;
    }
    let k_prime = params.k_prime();
    let c = params.c();
    let decay = (-k_prime * duration).exp();
    let delta = state.delta * decay + current / (c * k_prime) * (1.0 - decay);
    let gamma = state.gamma - current * duration;
    TransformedState { delta, gamma }
}

/// Computes the time until the battery first becomes empty when a constant
/// current is drawn from the given state.
///
/// Returns `Ok(None)` if the battery never empties under this current — in
/// particular for `current == 0` (idle periods only let the battery recover).
/// Returns `Ok(Some(0.0))` if the state is already empty.
///
/// # Errors
///
/// Returns [`KibamError::InvalidCurrent`] for negative or non-finite
/// currents.
///
/// # Example
///
/// ```
/// use kibam::{analytic::time_to_empty, BatteryParams, TransformedState};
///
/// # fn main() -> Result<(), kibam::KibamError> {
/// let b1 = BatteryParams::itsy_b1();
/// let lifetime = time_to_empty(&b1, TransformedState::full(&b1), 0.25)?
///     .expect("a constant 250 mA load empties B1");
/// // Table 3 of the paper: 4.53 minutes for the CL 250 load.
/// assert!((lifetime - 4.53).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn time_to_empty(
    params: &BatteryParams,
    state: TransformedState,
    current: f64,
) -> Result<Option<f64>, KibamError> {
    validate_current(current)?;
    if state.is_empty(params) {
        return Ok(Some(0.0));
    }
    if current <= CHARGE_EPSILON {
        // Idle: gamma constant, delta decays towards zero, margin only grows.
        return Ok(None);
    }
    // Upper bound: draining the entire remaining charge takes gamma / I.
    let t_max = (state.gamma / current).max(0.0);
    // xlint: allow(float-eq) -- max(0.0) pins the exact-zero boundary case
    if t_max == 0.0 {
        return Ok(Some(0.0));
    }
    let margin_at = |t: f64| evolve_unchecked(params, state, current, t).margin(params);

    // The margin is positive at t = 0 and non-positive at t_max (gamma = 0,
    // delta >= 0). Scan for the first sign change, then bisect.
    let step = t_max / SCAN_STEPS as f64;
    let mut lo = 0.0_f64;
    let mut hi = t_max;
    let mut found = false;
    for i in 1..=SCAN_STEPS {
        let t = step * i as f64;
        if margin_at(t) <= 0.0 {
            lo = step * (i - 1) as f64;
            hi = t;
            found = true;
            break;
        }
    }
    if !found {
        // Numerical corner case: treat the upper bound as the crossing.
        return Ok(Some(t_max));
    }
    for _ in 0..BISECTION_ITERS {
        let mid = 0.5 * (lo + hi);
        if margin_at(mid) <= 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(0.5 * (lo + hi)))
}

/// Lifetime of a full battery under a constant discharge current.
///
/// This is the single-battery, continuous-load case of the paper (the `CL`
/// loads of Section 5). Returns `Ok(None)` for a zero current.
///
/// # Errors
///
/// Returns [`KibamError::InvalidCurrent`] for negative or non-finite
/// currents.
pub fn lifetime_constant_current(
    params: &BatteryParams,
    current: f64,
) -> Result<Option<f64>, KibamError> {
    time_to_empty(params, TransformedState::full(params), current)
}

fn validate_current(current: f64) -> Result<(), KibamError> {
    if !(current.is_finite() && current >= 0.0) {
        return Err(KibamError::InvalidCurrent { value: current });
    }
    Ok(())
}

fn validate_duration(duration: f64) -> Result<(), KibamError> {
    if !(duration.is_finite() && duration >= 0.0) {
        return Err(KibamError::InvalidDuration { value: duration });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b1() -> BatteryParams {
        BatteryParams::itsy_b1()
    }

    #[test]
    fn evolve_validates_arguments() {
        let params = b1();
        let full = TransformedState::full(&params);
        assert!(matches!(evolve(&params, full, -0.1, 1.0), Err(KibamError::InvalidCurrent { .. })));
        assert!(matches!(
            evolve(&params, full, 0.1, -1.0),
            Err(KibamError::InvalidDuration { .. })
        ));
        assert!(matches!(
            evolve(&params, full, f64::NAN, 1.0),
            Err(KibamError::InvalidCurrent { .. })
        ));
    }

    #[test]
    fn zero_duration_is_identity() {
        let params = b1();
        let state = TransformedState { delta: 1.2, gamma: 3.4 };
        let after = evolve(&params, state, 0.5, 0.0).unwrap();
        assert_eq!(after, state);
    }

    #[test]
    fn gamma_decreases_linearly_with_current() {
        let params = b1();
        let full = TransformedState::full(&params);
        let after = evolve(&params, full, 0.25, 2.0).unwrap();
        assert!((after.gamma - (5.5 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn idle_period_recovers_height_difference() {
        let params = b1();
        let stressed = TransformedState { delta: 3.0, gamma: 4.0 };
        let rested = evolve(&params, stressed, 0.0, 5.0).unwrap();
        assert!(rested.delta < stressed.delta);
        assert_eq!(rested.gamma, stressed.gamma);
        // Exponential decay towards zero.
        let expected = 3.0 * (-0.122_f64 * 5.0).exp();
        assert!((rested.delta - expected).abs() < 1e-12);
    }

    #[test]
    fn delta_approaches_steady_state_under_constant_current() {
        let params = b1();
        let full = TransformedState::full(&params);
        let long = evolve(&params, full, 0.1, 500.0).unwrap();
        let steady = 0.1 / (params.c() * params.k_prime());
        assert!((long.delta - steady).abs() < 1e-6);
    }

    #[test]
    fn lifetime_cl_250_matches_paper_table_3() {
        let lifetime = lifetime_constant_current(&b1(), 0.25).unwrap().unwrap();
        assert!((lifetime - 4.53).abs() < 0.01, "got {lifetime}");
    }

    #[test]
    fn lifetime_cl_500_matches_paper_table_3() {
        let lifetime = lifetime_constant_current(&b1(), 0.5).unwrap().unwrap();
        assert!((lifetime - 2.02).abs() < 0.01, "got {lifetime}");
    }

    #[test]
    fn lifetime_b2_is_cl_250_of_b1_at_double_current() {
        // The model is scale invariant: doubling capacity and current gives
        // the same lifetime (Tables 3 and 4 of the paper exhibit this).
        let b2 = BatteryParams::itsy_b2();
        let l1 = lifetime_constant_current(&b1(), 0.25).unwrap().unwrap();
        let l2 = lifetime_constant_current(&b2, 0.5).unwrap().unwrap();
        assert!((l1 - l2).abs() < 1e-6);
    }

    #[test]
    fn zero_current_never_empties() {
        assert_eq!(lifetime_constant_current(&b1(), 0.0).unwrap(), None);
    }

    #[test]
    fn already_empty_state_has_zero_time_to_empty() {
        let params = b1();
        let empty = TransformedState { delta: 2.0, gamma: (1.0 - params.c()) * 2.0 };
        assert_eq!(time_to_empty(&params, empty, 0.5).unwrap(), Some(0.0));
    }

    #[test]
    fn higher_current_delivers_less_charge_rate_capacity_effect() {
        // The rate-capacity effect: the delivered charge I * lifetime is
        // smaller at higher discharge currents.
        let params = b1();
        let low = lifetime_constant_current(&params, 0.25).unwrap().unwrap();
        let high = lifetime_constant_current(&params, 0.5).unwrap().unwrap();
        assert!(0.25 * low > 0.5 * high);
    }

    #[test]
    fn time_to_empty_is_monotone_in_current() {
        let params = b1();
        let full = TransformedState::full(&params);
        let mut previous = f64::INFINITY;
        for current in [0.1, 0.2, 0.3, 0.5, 0.7, 1.0] {
            let t = time_to_empty(&params, full, current).unwrap().unwrap();
            assert!(t < previous, "lifetime must shrink as current grows");
            previous = t;
        }
    }
}
