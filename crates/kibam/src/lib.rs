//! Continuous Kinetic Battery Model (KiBaM).
//!
//! The Kinetic Battery Model of Manwell and McGowan describes a battery as two
//! charge wells: the *available-charge* well, which feeds the load directly,
//! and the *bound-charge* well, which replenishes the available-charge well
//! through a valve of fixed conductance `k`. The model captures the two most
//! important non-linear battery effects:
//!
//! * the **rate-capacity effect** — at high discharge currents less of the
//!   stored charge can be extracted before the battery appears empty, and
//! * the **recovery effect** — during idle periods bound charge flows back
//!   into the available-charge well, so the battery "recovers".
//!
//! This crate implements the model exactly as used in *"Maximizing System
//! Lifetime by Battery Scheduling"* (Jongerden et al., DSN 2009), Section 2:
//!
//! * [`BatteryParams`] — capacity `C`, well fraction `c` and rate constant
//!   `k' = k / (c (1 - c))`;
//! * [`TwoWellState`] / [`TransformedState`] — the battery state in the
//!   original `(y1, y2)` and transformed `(δ, γ)` coordinates (Eq. 2 of the
//!   paper);
//! * [`analytic`] — closed-form evolution under constant current and
//!   time-to-empty computation;
//! * [`ode`] — a Runge–Kutta integrator for arbitrary load functions, used to
//!   cross-validate the analytical solution;
//! * [`lifetime`] — lifetime computation for piecewise-constant loads, the
//!   form in which all of the paper's test loads are expressed;
//! * [`trace`] — sampled charge trajectories (used to regenerate Figure 6).
//!
//! # Quick example
//!
//! ```
//! use kibam::{BatteryParams, lifetime::{lifetime_for_segments, Segment}};
//!
//! # fn main() -> Result<(), kibam::KibamError> {
//! // Battery B1 of the paper: 5.5 A·min, c = 0.166, k' = 0.122 / min.
//! let b1 = BatteryParams::itsy_b1();
//! // Continuous 250 mA load (the paper's "CL 250").
//! let load = std::iter::repeat(Segment::new(0.25, 1.0)?);
//! let result = lifetime_for_segments(&b1, load).expect("battery must empty");
//! // Table 3 of the paper reports 4.53 minutes.
//! assert!((result.lifetime - 4.53).abs() < 0.01);
//! # Ok(())
//! # }
//! ```
//!
//! Units throughout the crate follow the paper: charge in ampere-minutes
//! (A·min), current in amperes (A), time in minutes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analytic;
mod error;
mod fleet;
pub mod lifetime;
pub mod ode;
mod params;
mod state;
pub mod trace;

pub use error::KibamError;
pub use fleet::FleetSpec;
pub use params::BatteryParams;
pub use state::{TransformedState, TwoWellState};

/// Numerical tolerance used for emptiness checks and validation throughout
/// the crate (charge quantities below this value are treated as zero).
pub const CHARGE_EPSILON: f64 = 1e-12;
