//! Numerical integration of the original KiBaM differential equations.
//!
//! The analytical solution in [`crate::analytic`] only applies to
//! piecewise-constant currents. For arbitrary load functions `i(t)` — and to
//! cross-validate the closed form — this module integrates the original
//! two-well system (Eq. 1 of the paper)
//!
//! ```text
//! dy1/dt = -i(t) + k·(h2 - h1)
//! dy2/dt = -k·(h2 - h1)
//! ```
//!
//! with a classical fixed-step fourth-order Runge–Kutta scheme.

use crate::{BatteryParams, KibamError, TwoWellState, CHARGE_EPSILON};

/// Result of integrating the model until the battery empties or the time
/// horizon is reached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrationOutcome {
    /// The state at the end of the integration.
    pub state: TwoWellState,
    /// The time at which integration stopped (minutes from the start).
    pub time: f64,
    /// Whether the battery was empty at the stop time.
    pub empty: bool,
}

/// Integrates the two-well equations from `state` over `duration` minutes
/// with step size `dt`, under the load function `load` (amperes as a function
/// of absolute time, starting at `t0`).
///
/// Integration stops early as soon as the available charge well is drained;
/// the returned [`IntegrationOutcome::time`] is then (a step-accurate
/// approximation of) the emptying time.
///
/// # Errors
///
/// Returns [`KibamError::InvalidDuration`] if `duration` is negative or not
/// finite, or if `dt` is not strictly positive and finite.
pub fn integrate<F>(
    params: &BatteryParams,
    state: TwoWellState,
    t0: f64,
    duration: f64,
    dt: f64,
    load: F,
) -> Result<IntegrationOutcome, KibamError>
where
    F: Fn(f64) -> f64,
{
    if !(duration.is_finite() && duration >= 0.0) {
        return Err(KibamError::InvalidDuration { value: duration });
    }
    if !(dt.is_finite() && dt > 0.0) {
        return Err(KibamError::InvalidDuration { value: dt });
    }

    let k = params.k();
    let c = params.c();
    let derivative = |t: f64, y1: f64, y2: f64| -> (f64, f64) {
        let h1 = y1 / c;
        let h2 = y2 / (1.0 - c);
        let flow = k * (h2 - h1);
        (-load(t) + flow, -flow)
    };

    let mut y1 = state.available();
    let mut y2 = state.bound();
    let mut t = 0.0_f64;
    while t < duration {
        if y1 <= CHARGE_EPSILON {
            return Ok(IntegrationOutcome {
                state: TwoWellState::new_unchecked(y1.max(0.0), y2.max(0.0)),
                time: t,
                empty: true,
            });
        }
        let h = dt.min(duration - t);
        let abs_t = t0 + t;
        let (k1a, k1b) = derivative(abs_t, y1, y2);
        let (k2a, k2b) = derivative(abs_t + 0.5 * h, y1 + 0.5 * h * k1a, y2 + 0.5 * h * k1b);
        let (k3a, k3b) = derivative(abs_t + 0.5 * h, y1 + 0.5 * h * k2a, y2 + 0.5 * h * k2b);
        let (k4a, k4b) = derivative(abs_t + h, y1 + h * k3a, y2 + h * k3b);
        y1 += h / 6.0 * (k1a + 2.0 * k2a + 2.0 * k3a + k4a);
        y2 += h / 6.0 * (k1b + 2.0 * k2b + 2.0 * k3b + k4b);
        t += h;
    }
    let empty = y1 <= CHARGE_EPSILON;
    Ok(IntegrationOutcome {
        state: TwoWellState::new_unchecked(y1.max(0.0), y2.max(0.0)),
        time: t,
        empty,
    })
}

/// Integrates until the battery becomes empty, or gives up after `max_time`
/// minutes.
///
/// Returns `Ok(None)` if the battery has not emptied within `max_time`.
///
/// # Errors
///
/// Propagates the validation errors of [`integrate`].
pub fn lifetime_numeric<F>(
    params: &BatteryParams,
    load: F,
    dt: f64,
    max_time: f64,
) -> Result<Option<f64>, KibamError>
where
    F: Fn(f64) -> f64,
{
    let outcome = integrate(params, params.full_state(), 0.0, max_time, dt, load)?;
    Ok(if outcome.empty { Some(outcome.time) } else { None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use crate::TransformedState;

    fn b1() -> BatteryParams {
        BatteryParams::itsy_b1()
    }

    #[test]
    fn rejects_invalid_steps_and_durations() {
        let params = b1();
        let full = params.full_state();
        assert!(integrate(&params, full, 0.0, -1.0, 0.01, |_| 0.0).is_err());
        assert!(integrate(&params, full, 0.0, 1.0, 0.0, |_| 0.0).is_err());
        assert!(integrate(&params, full, 0.0, 1.0, f64::NAN, |_| 0.0).is_err());
    }

    #[test]
    fn total_charge_conserved_under_zero_load() {
        let params = b1();
        let outcome = integrate(&params, params.full_state(), 0.0, 10.0, 0.01, |_| 0.0).unwrap();
        assert!(!outcome.empty);
        assert!((outcome.state.total() - params.capacity()).abs() < 1e-9);
    }

    #[test]
    fn numeric_matches_analytic_for_constant_current() {
        let params = b1();
        let current = 0.3;
        let outcome =
            integrate(&params, params.full_state(), 0.0, 1.5, 0.001, |_| current).unwrap();
        let analytic_state =
            analytic::evolve(&params, TransformedState::full(&params), current, 1.5)
                .unwrap()
                .to_two_well(&params);
        assert!((outcome.state.available() - analytic_state.available()).abs() < 1e-6);
        assert!((outcome.state.bound() - analytic_state.bound()).abs() < 1e-6);
    }

    #[test]
    fn numeric_lifetime_matches_analytic_lifetime() {
        let params = b1();
        let analytic_lifetime =
            analytic::lifetime_constant_current(&params, 0.25).unwrap().unwrap();
        let numeric_lifetime = lifetime_numeric(&params, |_| 0.25, 0.0005, 100.0).unwrap().unwrap();
        assert!(
            (analytic_lifetime - numeric_lifetime).abs() < 0.01,
            "analytic {analytic_lifetime} vs numeric {numeric_lifetime}"
        );
    }

    #[test]
    fn recovery_moves_bound_charge_to_available() {
        let params = b1();
        // Discharge hard, then rest.
        let after_burst =
            integrate(&params, params.full_state(), 0.0, 1.0, 0.001, |_| 0.7).unwrap();
        assert!(!after_burst.empty);
        let rested = integrate(&params, after_burst.state, 1.0, 5.0, 0.001, |_| 0.0).unwrap();
        assert!(rested.state.available() > after_burst.state.available());
        assert!(rested.state.bound() < after_burst.state.bound());
        assert!((rested.state.total() - after_burst.state.total()).abs() < 1e-9);
    }

    #[test]
    fn time_varying_load_is_sampled() {
        let params = b1();
        // A load that is 0.5 A for the first minute and zero afterwards.
        let load = |t: f64| if t < 1.0 { 0.5 } else { 0.0 };
        let outcome = integrate(&params, params.full_state(), 0.0, 3.0, 0.001, load).unwrap();
        // The load discontinuity at t = 1 is smeared over one RK4 step, so
        // allow a step-sized tolerance on the drawn charge.
        assert!((outcome.state.total() - (params.capacity() - 0.5)).abs() < 1e-3);
    }

    #[test]
    fn lifetime_none_when_horizon_too_short() {
        let params = b1();
        assert_eq!(lifetime_numeric(&params, |_| 0.25, 0.001, 1.0).unwrap(), None);
    }
}
