//! Battery lifetime under piecewise-constant loads.
//!
//! All loads in the paper (Section 5) are sequences of constant-current
//! *segments*: jobs of 250 mA or 500 mA and idle periods of 0 mA. This module
//! evolves the analytical KiBaM segment by segment and locates the instant at
//! which the battery first becomes empty, which is the paper's definition of
//! battery *lifetime*.

use crate::analytic::{evolve_unchecked, time_to_empty};
use crate::{BatteryParams, KibamError, TransformedState};

/// Safety cap on the number of processed segments, so that an accidentally
/// infinite all-idle load does not hang the solver.
const MAX_SEGMENTS: usize = 10_000_000;

/// A period of constant discharge current.
///
/// `current` is in amperes, `duration` in minutes. A zero current models an
/// idle (recovery) period.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    current: f64,
    duration: f64,
}

impl Segment {
    /// Creates a segment, validating current and duration.
    ///
    /// # Errors
    ///
    /// Returns [`KibamError::InvalidCurrent`] if `current` is negative or not
    /// finite and [`KibamError::InvalidDuration`] if `duration` is negative
    /// or not finite.
    pub fn new(current: f64, duration: f64) -> Result<Self, KibamError> {
        if !(current.is_finite() && current >= 0.0) {
            return Err(KibamError::InvalidCurrent { value: current });
        }
        if !(duration.is_finite() && duration >= 0.0) {
            return Err(KibamError::InvalidDuration { value: duration });
        }
        Ok(Self { current, duration })
    }

    /// An idle segment (zero current) of the given duration.
    ///
    /// # Errors
    ///
    /// Returns [`KibamError::InvalidDuration`] if `duration` is negative or
    /// not finite.
    pub fn idle(duration: f64) -> Result<Self, KibamError> {
        Self::new(0.0, duration)
    }

    /// The discharge current of this segment in amperes.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The duration of this segment in minutes.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Whether this segment draws no current.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        // xlint: allow(float-eq) -- idle is defined as exactly-zero current
        self.current == 0.0
    }

    /// The charge drawn over the whole segment, in A·min.
    #[must_use]
    pub fn charge(&self) -> f64 {
        self.current * self.duration
    }
}

/// Outcome of a lifetime computation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LifetimeResult {
    /// Time (minutes from the start of the load) at which the battery first
    /// became empty.
    pub lifetime: f64,
    /// Battery state at the moment it became empty.
    pub final_state: TransformedState,
    /// Total charge delivered to the load up to the lifetime, in A·min.
    pub delivered_charge: f64,
    /// Charge left behind in the battery (all of it bound or unavailable) at
    /// the moment it became empty, in A·min.
    pub residual_charge: f64,
}

/// Computes the lifetime of a full battery under a piecewise-constant load.
///
/// The iterator may be infinite (e.g. a repeating job pattern); iteration
/// stops as soon as the battery becomes empty. `None` is returned when the
/// load ends (or the internal segment cap is reached) before the battery is
/// empty.
///
/// # Example
///
/// ```
/// use kibam::{BatteryParams, lifetime::{lifetime_for_segments, Segment}};
///
/// # fn main() -> Result<(), kibam::KibamError> {
/// let b1 = BatteryParams::itsy_b1();
/// // The paper's ILs 500 load: 500 mA jobs of one minute with one-minute
/// // idle periods in between. Table 3 reports a lifetime of 4.30 minutes.
/// let job = Segment::new(0.5, 1.0)?;
/// let idle = Segment::idle(1.0)?;
/// let load = std::iter::repeat([job, idle]).flatten();
/// let result = lifetime_for_segments(&b1, load).expect("battery empties");
/// assert!((result.lifetime - 4.30).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn lifetime_for_segments<I>(params: &BatteryParams, segments: I) -> Option<LifetimeResult>
where
    I: IntoIterator<Item = Segment>,
{
    lifetime_from_state(params, TransformedState::full(params), segments).map(|mut r| {
        r.delivered_charge = params.capacity() - r.final_state.gamma;
        r
    })
}

/// Computes the time until empty starting from an arbitrary state.
///
/// Like [`lifetime_for_segments`] but starting from `state` rather than a
/// full battery; the returned `delivered_charge` is measured relative to
/// `state`.
#[must_use]
pub fn lifetime_from_state<I>(
    params: &BatteryParams,
    state: TransformedState,
    segments: I,
) -> Option<LifetimeResult>
where
    I: IntoIterator<Item = Segment>,
{
    let initial_gamma = state.gamma;
    let mut current_state = state;
    let mut elapsed = 0.0_f64;
    for (index, segment) in segments.into_iter().enumerate() {
        if index >= MAX_SEGMENTS {
            return None;
        }
        if let Some(t) = time_to_empty(params, current_state, segment.current)
            // xlint: allow(panic) -- segment currents are validated at construction
            .expect("segment currents are validated at construction")
        {
            if t <= segment.duration {
                let final_state = evolve_unchecked(params, current_state, segment.current, t);
                return Some(LifetimeResult {
                    lifetime: elapsed + t,
                    final_state,
                    delivered_charge: initial_gamma - final_state.gamma,
                    residual_charge: final_state.gamma,
                });
            }
        }
        current_state = evolve_unchecked(params, current_state, segment.current, segment.duration);
        elapsed += segment.duration;
    }
    None
}

/// Evolves a state through a finite list of segments without stopping at the
/// empty condition; useful for computing the state a load leaves a battery
/// in, e.g. in scheduling simulations where another battery takes over.
#[must_use]
pub fn evolve_through_segments<I>(
    params: &BatteryParams,
    state: TransformedState,
    segments: I,
) -> TransformedState
where
    I: IntoIterator<Item = Segment>,
{
    segments
        .into_iter()
        .fold(state, |s, seg| evolve_unchecked(params, s, seg.current, seg.duration))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b1() -> BatteryParams {
        BatteryParams::itsy_b1()
    }

    fn b2() -> BatteryParams {
        BatteryParams::itsy_b2()
    }

    fn repeat_jobs(pattern: Vec<Segment>) -> impl Iterator<Item = Segment> {
        std::iter::repeat(pattern).flatten()
    }

    #[test]
    fn segment_validation() {
        assert!(Segment::new(0.25, 1.0).is_ok());
        assert!(Segment::new(-0.25, 1.0).is_err());
        assert!(Segment::new(0.25, -1.0).is_err());
        assert!(Segment::new(f64::NAN, 1.0).is_err());
        assert!(Segment::idle(2.0).unwrap().is_idle());
        assert_eq!(Segment::new(0.5, 2.0).unwrap().charge(), 1.0);
    }

    #[test]
    fn continuous_250_matches_table_3() {
        let result =
            lifetime_for_segments(&b1(), repeat_jobs(vec![Segment::new(0.25, 1.0).unwrap()]))
                .unwrap();
        assert!((result.lifetime - 4.53).abs() < 0.01, "got {}", result.lifetime);
        assert!(result.residual_charge > 0.0);
        assert!(
            (result.delivered_charge + result.residual_charge - 5.5).abs() < 1e-9,
            "charge must be conserved"
        );
    }

    #[test]
    fn intermittent_500_matches_table_3() {
        let pattern = vec![Segment::new(0.5, 1.0).unwrap(), Segment::idle(1.0).unwrap()];
        let result = lifetime_for_segments(&b1(), repeat_jobs(pattern)).unwrap();
        assert!((result.lifetime - 4.30).abs() < 0.01, "got {}", result.lifetime);
    }

    #[test]
    fn long_idle_250_matches_table_3() {
        let pattern = vec![Segment::new(0.25, 1.0).unwrap(), Segment::idle(2.0).unwrap()];
        let result = lifetime_for_segments(&b1(), repeat_jobs(pattern)).unwrap();
        assert!((result.lifetime - 21.86).abs() < 0.02, "got {}", result.lifetime);
    }

    #[test]
    fn alternating_continuous_matches_table_3() {
        // CL alt: alternating 500 mA / 250 mA one-minute jobs, starting with
        // the high-current job (see EXPERIMENTS.md on calibration).
        let pattern = vec![Segment::new(0.5, 1.0).unwrap(), Segment::new(0.25, 1.0).unwrap()];
        let result = lifetime_for_segments(&b1(), repeat_jobs(pattern)).unwrap();
        assert!((result.lifetime - 2.58).abs() < 0.01, "got {}", result.lifetime);
    }

    #[test]
    fn b2_intermittent_250_matches_table_4() {
        let pattern = vec![Segment::new(0.25, 1.0).unwrap(), Segment::idle(1.0).unwrap()];
        let result = lifetime_for_segments(&b2(), repeat_jobs(pattern)).unwrap();
        assert!((result.lifetime - 44.78).abs() < 0.02, "got {}", result.lifetime);
    }

    #[test]
    fn finite_load_that_does_not_empty_returns_none() {
        let load = vec![Segment::new(0.25, 1.0).unwrap(); 3];
        assert!(lifetime_for_segments(&b1(), load).is_none());
    }

    #[test]
    fn infinite_idle_load_terminates_with_none() {
        let load = repeat_jobs(vec![Segment::idle(1.0).unwrap()]).take(MAX_SEGMENTS + 10);
        assert!(lifetime_for_segments(&b1(), load).is_none());
    }

    #[test]
    fn idle_periods_extend_lifetime() {
        let continuous =
            lifetime_for_segments(&b1(), repeat_jobs(vec![Segment::new(0.5, 1.0).unwrap()]))
                .unwrap()
                .lifetime;
        let intermittent = lifetime_for_segments(
            &b1(),
            repeat_jobs(vec![Segment::new(0.5, 1.0).unwrap(), Segment::idle(1.0).unwrap()]),
        )
        .unwrap()
        .lifetime;
        // More wall-clock lifetime *and* more charge delivered.
        assert!(intermittent > continuous);
    }

    #[test]
    fn evolve_through_segments_accumulates() {
        let params = b1();
        let segs = vec![
            Segment::new(0.5, 1.0).unwrap(),
            Segment::idle(1.0).unwrap(),
            Segment::new(0.25, 1.0).unwrap(),
        ];
        let state = evolve_through_segments(&params, TransformedState::full(&params), segs);
        assert!((state.gamma - (5.5 - 0.5 - 0.25)).abs() < 1e-12);
        assert!(state.delta > 0.0);
    }

    #[test]
    fn lifetime_from_partially_used_state_is_shorter() {
        let params = b1();
        let used = evolve_through_segments(
            &params,
            TransformedState::full(&params),
            vec![Segment::new(0.5, 1.0).unwrap()],
        );
        let from_full =
            lifetime_for_segments(&params, repeat_jobs(vec![Segment::new(0.25, 1.0).unwrap()]))
                .unwrap()
                .lifetime;
        let from_used =
            lifetime_from_state(&params, used, repeat_jobs(vec![Segment::new(0.25, 1.0).unwrap()]))
                .unwrap()
                .lifetime;
        assert!(from_used < from_full);
    }
}
