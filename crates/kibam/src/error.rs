use std::error::Error;
use std::fmt;

/// Errors produced when constructing or using KiBaM model entities.
///
/// All constructors in this crate validate their arguments (capacities and
/// durations must be positive and finite, the well fraction must lie strictly
/// between zero and one, …) and report violations through this type.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KibamError {
    /// The battery capacity was zero, negative, NaN or infinite.
    InvalidCapacity {
        /// The rejected capacity value (A·min).
        value: f64,
    },
    /// The available-charge well fraction `c` was outside the open interval
    /// `(0, 1)` or not finite.
    InvalidWellFraction {
        /// The rejected fraction.
        value: f64,
    },
    /// The rate constant `k'` was zero, negative, NaN or infinite.
    InvalidRateConstant {
        /// The rejected rate constant (1/min).
        value: f64,
    },
    /// A discharge current was negative, NaN or infinite.
    InvalidCurrent {
        /// The rejected current (A).
        value: f64,
    },
    /// A duration or time step was negative, zero where positivity is
    /// required, NaN or infinite.
    InvalidDuration {
        /// The rejected duration (min).
        value: f64,
    },
    /// A charge amount (well content) was negative, NaN or infinite.
    InvalidCharge {
        /// The rejected charge (A·min).
        value: f64,
    },
    /// A battery fleet was constructed with no batteries.
    EmptyFleet,
}

impl fmt::Display for KibamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KibamError::InvalidCapacity { value } => {
                write!(f, "battery capacity must be positive and finite, got {value}")
            }
            KibamError::InvalidWellFraction { value } => {
                write!(
                    f,
                    "available-charge well fraction must lie strictly between 0 and 1, got {value}"
                )
            }
            KibamError::InvalidRateConstant { value } => {
                write!(f, "rate constant k' must be positive and finite, got {value}")
            }
            KibamError::InvalidCurrent { value } => {
                write!(f, "discharge current must be non-negative and finite, got {value}")
            }
            KibamError::InvalidDuration { value } => {
                write!(f, "duration must be non-negative and finite, got {value}")
            }
            KibamError::InvalidCharge { value } => {
                write!(f, "charge must be non-negative and finite, got {value}")
            }
            KibamError::EmptyFleet => {
                write!(f, "a battery fleet needs at least one battery")
            }
        }
    }
}

impl Error for KibamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_value() {
        let err = KibamError::InvalidCapacity { value: -1.0 };
        assert!(err.to_string().contains("-1"));
        let err = KibamError::InvalidWellFraction { value: 1.5 };
        assert!(err.to_string().contains("1.5"));
        let err = KibamError::InvalidRateConstant { value: 0.0 };
        assert!(err.to_string().contains('0'));
        let err = KibamError::InvalidCurrent { value: f64::NAN };
        assert!(err.to_string().contains("NaN"));
        let err = KibamError::InvalidDuration { value: -2.0 };
        assert!(err.to_string().contains("-2"));
        let err = KibamError::InvalidCharge { value: -3.0 };
        assert!(err.to_string().contains("-3"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<KibamError>();
    }
}
