use crate::{BatteryParams, KibamError, CHARGE_EPSILON};

/// Battery state in the original KiBaM coordinates: the charge `y1` in the
/// available-charge well and the charge `y2` in the bound-charge well
/// (Figure 1 / Eq. 1 of the paper).
///
/// The battery is *empty* once the available-charge well is drained
/// (`y1 = 0`), even though bound charge may remain.
///
/// # Example
///
/// ```
/// use kibam::{BatteryParams, TwoWellState};
///
/// let b1 = BatteryParams::itsy_b1();
/// let full = b1.full_state();
/// assert!(!full.is_empty());
/// assert!((full.total() - b1.capacity()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoWellState {
    available: f64,
    bound: f64,
}

impl TwoWellState {
    /// Creates a state from well contents, validating both charges.
    ///
    /// # Errors
    ///
    /// Returns [`KibamError::InvalidCharge`] if either charge is negative,
    /// NaN or infinite.
    pub fn new(available: f64, bound: f64) -> Result<Self, KibamError> {
        for value in [available, bound] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(KibamError::InvalidCharge { value });
            }
        }
        Ok(Self { available, bound })
    }

    /// Internal constructor that skips validation (used where values are
    /// known to be derived from validated inputs).
    pub(crate) fn new_unchecked(available: f64, bound: f64) -> Self {
        Self { available, bound }
    }

    /// Charge `y1` in the available-charge well (A·min).
    #[must_use]
    pub fn available(&self) -> f64 {
        self.available
    }

    /// Charge `y2` in the bound-charge well (A·min).
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Total remaining charge `γ = y1 + y2` (A·min).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.available + self.bound
    }

    /// Whether the battery is empty, i.e. the available-charge well is
    /// (numerically) drained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.available <= CHARGE_EPSILON
    }

    /// Converts the state to the transformed `(δ, γ)` coordinates of Eq. 2.
    ///
    /// `δ = h2 - h1 = y2 / (1 - c) - y1 / c` is the height difference
    /// between the wells and `γ = y1 + y2` the total charge.
    #[must_use]
    pub fn to_transformed(&self, params: &BatteryParams) -> TransformedState {
        let c = params.c();
        let delta = self.bound / (1.0 - c) - self.available / c;
        TransformedState { delta, gamma: self.total() }
    }
}

/// Battery state in the transformed coordinates of Eq. 2 of the paper:
/// the well *height difference* `δ = h2 - h1` and the *total charge*
/// `γ = y1 + y2`.
///
/// In these coordinates the dynamics decouple nicely: `γ` decreases linearly
/// with the drawn current while `δ` follows a first-order relaxation, and the
/// battery is empty exactly when `γ = (1 - c) · δ` (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransformedState {
    /// Height difference `δ` between the bound- and available-charge wells.
    pub delta: f64,
    /// Total remaining charge `γ` (A·min).
    pub gamma: f64,
}

impl TransformedState {
    /// The state of a freshly charged battery: `δ = 0`, `γ = C`.
    #[must_use]
    pub fn full(params: &BatteryParams) -> Self {
        Self { delta: 0.0, gamma: params.capacity() }
    }

    /// Converts back to the original two-well coordinates.
    ///
    /// The inverse transform is `y1 = c·γ - c(1-c)·δ`, `y2 = γ - y1`. Values
    /// are clamped at zero to absorb floating-point round-off at the empty
    /// boundary.
    #[must_use]
    pub fn to_two_well(&self, params: &BatteryParams) -> TwoWellState {
        let c = params.c();
        let available = (c * self.gamma - c * (1.0 - c) * self.delta).max(0.0);
        let bound = (self.gamma - available).max(0.0);
        TwoWellState { available, bound }
    }

    /// Charge remaining in the available-charge well, `y1 = c·(γ - (1-c)·δ)`.
    #[must_use]
    pub fn available_charge(&self, params: &BatteryParams) -> f64 {
        let c = params.c();
        (c * (self.gamma - (1.0 - c) * self.delta)).max(0.0)
    }

    /// The *emptiness margin* `γ - (1 - c)·δ`; the battery is empty when this
    /// reaches zero (Eq. 3). Positive values mean charge is still available.
    #[must_use]
    pub fn margin(&self, params: &BatteryParams) -> f64 {
        self.gamma - (1.0 - params.c()) * self.delta
    }

    /// Whether the battery is empty under the criterion of Eq. 3.
    #[must_use]
    pub fn is_empty(&self, params: &BatteryParams) -> bool {
        self.margin(params) <= CHARGE_EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b1() -> BatteryParams {
        BatteryParams::itsy_b1()
    }

    #[test]
    fn new_validates_charges() {
        assert!(TwoWellState::new(1.0, 2.0).is_ok());
        assert!(TwoWellState::new(-0.1, 2.0).is_err());
        assert!(TwoWellState::new(1.0, f64::NAN).is_err());
        assert!(TwoWellState::new(f64::INFINITY, 0.0).is_err());
    }

    #[test]
    fn full_state_has_zero_height_difference() {
        let t = b1().full_state().to_transformed(&b1());
        assert!(t.delta.abs() < 1e-12);
        assert!((t.gamma - 5.5).abs() < 1e-12);
    }

    #[test]
    fn round_trip_two_well_transformed() {
        let params = b1();
        let original = TwoWellState::new(0.3, 2.7).unwrap();
        let back = original.to_transformed(&params).to_two_well(&params);
        assert!((back.available() - 0.3).abs() < 1e-10);
        assert!((back.bound() - 2.7).abs() < 1e-10);
    }

    #[test]
    fn empty_criterion_matches_available_charge() {
        let params = b1();
        // A state right at the empty boundary: y1 = 0.
        let state = TwoWellState::new(0.0, 3.0).unwrap();
        let t = state.to_transformed(&params);
        assert!(t.is_empty(&params));
        assert!(state.is_empty());
        assert!(t.available_charge(&params).abs() < 1e-12);
        // Margin is gamma - (1-c) delta = y1 / c.
        let nonempty = TwoWellState::new(0.5, 3.0).unwrap().to_transformed(&params);
        assert!((nonempty.margin(&params) - 0.5 / params.c()).abs() < 1e-10);
    }

    #[test]
    fn transformed_full_matches_capacity() {
        let params = b1();
        let t = TransformedState::full(&params);
        assert_eq!(t.gamma, params.capacity());
        assert_eq!(t.delta, 0.0);
        let w = t.to_two_well(&params);
        assert!((w.available() - params.c() * params.capacity()).abs() < 1e-12);
    }

    #[test]
    fn to_two_well_clamps_negative_roundoff() {
        let params = b1();
        // delta slightly larger than the empty boundary: available charge
        // would be a tiny negative number without clamping.
        let gamma = 1.0;
        let delta = gamma / (1.0 - params.c()) + 1e-9;
        let t = TransformedState { delta, gamma };
        let w = t.to_two_well(&params);
        assert!(w.available() >= 0.0);
        assert!(w.bound() >= 0.0);
    }
}
