//! Heterogeneous battery fleets.
//!
//! The paper schedules identical batteries, but its Section 7 outlook — and
//! the whole point of scheduling — is mixed systems, e.g. one B1 next to one
//! B2. A [`FleetSpec`] is the construction-time description of such a
//! system: an ordered list of per-battery [`BatteryParams`] plus derived
//! *type-group* metadata (batteries with bit-identical parameters share a
//! type). Every layer above — discretized state, battery-model backends,
//! the optimal search's symmetry pruning and canonical state keys — is
//! built from a fleet; [`FleetSpec::uniform`] is the convenience
//! constructor that recovers the paper's `params × count` systems.

use crate::{BatteryParams, KibamError};

/// An ordered list of per-battery parameters with type-group metadata.
///
/// Batteries whose [`BatteryParams`] compare equal belong to the same
/// *type group*; type ids are assigned in order of first appearance, so a
/// `B1 + B2 + B1` fleet has type ids `[0, 1, 0]`. Schedulers use the
/// groups for symmetry pruning (only same-type batteries are
/// interchangeable) and for canonical state keys (state words are sorted
/// *within* a type group, never across groups).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    params: Vec<BatteryParams>,
    type_ids: Vec<usize>,
    type_params: Vec<BatteryParams>,
}

impl FleetSpec {
    /// Creates a fleet from explicit per-battery parameters, in battery
    /// index order.
    ///
    /// # Errors
    ///
    /// Returns [`KibamError::EmptyFleet`] if `params` is empty.
    pub fn new(params: Vec<BatteryParams>) -> Result<Self, KibamError> {
        if params.is_empty() {
            return Err(KibamError::EmptyFleet);
        }
        let mut type_ids = Vec::with_capacity(params.len());
        let mut type_params: Vec<BatteryParams> = Vec::new();
        for battery in &params {
            let type_id = match type_params.iter().position(|p| p == battery) {
                Some(existing) => existing,
                None => {
                    type_params.push(*battery);
                    type_params.len() - 1
                }
            };
            type_ids.push(type_id);
        }
        Ok(Self { params, type_ids, type_params })
    }

    /// A fleet of `count` identical batteries — the paper's systems.
    ///
    /// # Errors
    ///
    /// Returns [`KibamError::EmptyFleet`] if `count` is zero.
    pub fn uniform(params: BatteryParams, count: usize) -> Result<Self, KibamError> {
        Self::new(vec![params; count])
    }

    /// The number of batteries in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the fleet holds no batteries (never true for a constructed
    /// fleet; provided for clippy-idiomatic completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The per-battery parameters, in battery index order.
    #[must_use]
    pub fn params(&self) -> &[BatteryParams] {
        &self.params
    }

    /// The parameters of battery `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (battery indices come from the
    /// fleet itself, so an out-of-range index is a caller bug).
    #[must_use]
    pub fn battery(&self, index: usize) -> &BatteryParams {
        &self.params[index]
    }

    /// The type-group id of battery `index` (ids are dense, assigned in
    /// order of first appearance).
    #[must_use]
    pub fn type_of(&self, index: usize) -> usize {
        self.type_ids[index]
    }

    /// The type-group id of every battery, in battery index order.
    #[must_use]
    pub fn type_ids(&self) -> &[usize] {
        &self.type_ids
    }

    /// The number of distinct battery types in the fleet.
    #[must_use]
    pub fn type_count(&self) -> usize {
        self.type_params.len()
    }

    /// The representative parameters of type group `type_id`.
    #[must_use]
    pub fn type_params(&self, type_id: usize) -> &BatteryParams {
        &self.type_params[type_id]
    }

    /// Whether every battery in the fleet has identical parameters.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.type_params.len() == 1
    }

    /// The combined capacity of all batteries, in A·min.
    #[must_use]
    pub fn total_capacity(&self) -> f64 {
        self.params.iter().map(BatteryParams::capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fleet_has_one_type_group() {
        let fleet = FleetSpec::uniform(BatteryParams::itsy_b1(), 3).unwrap();
        assert_eq!(fleet.len(), 3);
        assert!(fleet.is_uniform());
        assert_eq!(fleet.type_count(), 1);
        assert_eq!(fleet.type_ids(), &[0, 0, 0]);
        assert!((fleet.total_capacity() - 16.5).abs() < 1e-12);
        assert_eq!(fleet.battery(2), &BatteryParams::itsy_b1());
    }

    #[test]
    fn mixed_fleet_groups_by_first_appearance() {
        let b1 = BatteryParams::itsy_b1();
        let b2 = BatteryParams::itsy_b2();
        let fleet = FleetSpec::new(vec![b1, b2, b1]).unwrap();
        assert!(!fleet.is_uniform());
        assert_eq!(fleet.type_count(), 2);
        assert_eq!(fleet.type_ids(), &[0, 1, 0]);
        assert_eq!(fleet.type_of(1), 1);
        assert_eq!(fleet.type_params(0), &b1);
        assert_eq!(fleet.type_params(1), &b2);
        assert!((fleet.total_capacity() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fleets_are_rejected() {
        assert!(matches!(FleetSpec::new(vec![]), Err(KibamError::EmptyFleet)));
        assert!(matches!(
            FleetSpec::uniform(BatteryParams::itsy_b1(), 0),
            Err(KibamError::EmptyFleet)
        ));
        assert!(!FleetSpec::uniform(BatteryParams::itsy_b1(), 1).unwrap().is_empty());
    }

    #[test]
    fn type_identity_is_exact_parameter_equality() {
        let b1 = BatteryParams::itsy_b1();
        let almost = BatteryParams::new(b1.capacity() + 1e-9, b1.c(), b1.k_prime()).unwrap();
        let fleet = FleetSpec::new(vec![b1, almost]).unwrap();
        assert_eq!(fleet.type_count(), 2, "nearly-equal parameters are distinct types");
    }
}
