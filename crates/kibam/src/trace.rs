//! Sampled charge trajectories.
//!
//! Figure 6 of the paper plots, over time, the *total* and *available* charge
//! of each battery together with the schedule. This module produces such
//! trajectories for a single battery under a piecewise-constant load; the
//! multi-battery version (with the schedule) lives in the `battery-sched`
//! crate and builds on this.

use crate::analytic::evolve_unchecked;
use crate::lifetime::Segment;
use crate::{BatteryParams, KibamError, TransformedState, TwoWellState};

/// One sample of a charge trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TracePoint {
    /// Absolute time of the sample, in minutes.
    pub time: f64,
    /// Total remaining charge `γ` at that time (A·min).
    pub total_charge: f64,
    /// Charge in the available-charge well at that time (A·min).
    pub available_charge: f64,
    /// Current drawn from the battery at that time (A).
    pub current: f64,
}

/// A sampled trajectory of a single battery under a load.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    /// The samples, in increasing time order, spaced by the sampling step.
    pub points: Vec<TracePoint>,
    /// The time at which the battery became empty, if it did within the load.
    pub lifetime: Option<f64>,
}

impl Trace {
    /// The state (in two-well coordinates) at the last sample, if any.
    #[must_use]
    pub fn final_state(&self, params: &BatteryParams) -> Option<TwoWellState> {
        self.points.last().map(|p| {
            let bound = (p.total_charge - p.available_charge).max(0.0);
            TwoWellState::new(p.available_charge, bound).unwrap_or_else(|_| params.full_state())
        })
    }
}

/// Samples the battery state every `sample_step` minutes while applying the
/// given load segments, stopping when the battery empties or the segments
/// run out.
///
/// # Errors
///
/// Returns [`KibamError::InvalidDuration`] if `sample_step` is not strictly
/// positive and finite.
pub fn trace_segments<I>(
    params: &BatteryParams,
    segments: I,
    sample_step: f64,
) -> Result<Trace, KibamError>
where
    I: IntoIterator<Item = Segment>,
{
    if !(sample_step.is_finite() && sample_step > 0.0) {
        return Err(KibamError::InvalidDuration { value: sample_step });
    }
    let mut state = TransformedState::full(params);
    let mut time = 0.0_f64;
    let mut points = vec![sample(params, time, state, 0.0)];
    let mut lifetime = None;

    'outer: for segment in segments {
        let mut remaining = segment.duration();
        // Stop once the leftover duration is pure floating-point residue, so
        // that no (near-)duplicate time samples are emitted.
        while remaining > 1e-12 {
            let dt = sample_step.min(remaining);
            let next = evolve_unchecked(params, state, segment.current(), dt);
            if next.is_empty(params) {
                // Refine the crossing within this sampling interval.
                let mut lo = 0.0;
                let mut hi = dt;
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    if evolve_unchecked(params, state, segment.current(), mid).is_empty(params) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                let t_empty = 0.5 * (lo + hi);
                state = evolve_unchecked(params, state, segment.current(), t_empty);
                time += t_empty;
                points.push(sample(params, time, state, segment.current()));
                lifetime = Some(time);
                break 'outer;
            }
            state = next;
            time += dt;
            remaining -= dt;
            points.push(sample(params, time, state, segment.current()));
        }
    }

    Ok(Trace { points, lifetime })
}

fn sample(params: &BatteryParams, time: f64, state: TransformedState, current: f64) -> TracePoint {
    TracePoint {
        time,
        total_charge: state.gamma,
        available_charge: state.available_charge(params),
        current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b1() -> BatteryParams {
        BatteryParams::itsy_b1()
    }

    #[test]
    fn rejects_bad_sample_step() {
        assert!(trace_segments(&b1(), Vec::new(), 0.0).is_err());
        assert!(trace_segments(&b1(), Vec::new(), -0.1).is_err());
        assert!(trace_segments(&b1(), Vec::new(), f64::NAN).is_err());
    }

    #[test]
    fn empty_load_produces_single_initial_sample() {
        let trace = trace_segments(&b1(), Vec::new(), 0.1).unwrap();
        assert_eq!(trace.points.len(), 1);
        assert_eq!(trace.points[0].time, 0.0);
        assert_eq!(trace.points[0].total_charge, 5.5);
        assert!(trace.lifetime.is_none());
    }

    #[test]
    fn trace_lifetime_matches_lifetime_solver() {
        let params = b1();
        let pattern = vec![Segment::new(0.5, 1.0).unwrap(), Segment::idle(1.0).unwrap()];
        let segments: Vec<Segment> =
            std::iter::repeat(pattern.clone()).flatten().take(40).collect();
        let trace = trace_segments(&params, segments, 0.05).unwrap();
        let lifetime =
            crate::lifetime::lifetime_for_segments(&params, std::iter::repeat(pattern).flatten())
                .unwrap()
                .lifetime;
        let traced = trace.lifetime.expect("battery empties within 40 segments");
        assert!((traced - lifetime).abs() < 1e-6, "{traced} vs {lifetime}");
    }

    #[test]
    fn samples_are_monotone_in_time_and_total_charge_non_increasing() {
        let params = b1();
        let segments: Vec<Segment> =
            std::iter::repeat(vec![Segment::new(0.25, 1.0).unwrap(), Segment::idle(1.0).unwrap()])
                .flatten()
                .take(30)
                .collect();
        let trace = trace_segments(&params, segments, 0.1).unwrap();
        for pair in trace.points.windows(2) {
            assert!(pair[1].time > pair[0].time);
            assert!(pair[1].total_charge <= pair[0].total_charge + 1e-12);
        }
    }

    #[test]
    fn available_charge_recovers_during_idle() {
        let params = b1();
        let segments = vec![Segment::new(0.5, 1.0).unwrap(), Segment::idle(2.0).unwrap()];
        let trace = trace_segments(&params, segments, 0.1).unwrap();
        // Find the sample at the end of the job and the last sample.
        let at_job_end = trace.points.iter().find(|p| (p.time - 1.0).abs() < 1e-9).unwrap();
        let last = trace.points.last().unwrap();
        assert!(last.available_charge > at_job_end.available_charge);
        assert!((last.total_charge - at_job_end.total_charge).abs() < 1e-12);
    }

    #[test]
    fn final_state_is_consistent() {
        let params = b1();
        let segments = vec![Segment::new(0.25, 2.0).unwrap()];
        let trace = trace_segments(&params, segments, 0.5).unwrap();
        let state = trace.final_state(&params).unwrap();
        assert!((state.total() - (5.5 - 0.5)).abs() < 1e-9);
    }
}
