//! Property-style tests of the continuous KiBaM invariants.
//!
//! The build environment is offline, so instead of `proptest` the invariants
//! are checked over a deterministic pseudo-random sample of the same input
//! space (a SplitMix64 stream with a fixed seed). Each property is exercised
//! on a few hundred cases, which covers the parameter ranges the original
//! property-based suite drew from.

use kibam::analytic::{evolve, time_to_empty};
use kibam::lifetime::{lifetime_for_segments, Segment};
use kibam::{BatteryParams, TransformedState};
use workload::random::SplitMix64;

/// Deterministic sample stream over the test input space (the `workload`
/// dev-dependency provides the shared SplitMix64 implementation).
struct Cases {
    rng: SplitMix64,
}

impl Cases {
    fn new(seed: u64) -> Self {
        Self { rng: SplitMix64::new(seed) }
    }

    /// Uniform f64 in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.next_range(lo, hi)
    }

    fn params(&mut self) -> BatteryParams {
        let capacity = self.range(0.5, 50.0);
        let c = self.range(0.05, 0.95);
        let k_prime = self.range(0.01, 2.0);
        BatteryParams::new(capacity, c, k_prime).expect("sampled params are valid")
    }
}

const CASES: usize = 300;

/// Total charge is conserved: whatever is drawn plus whatever remains equals
/// the initial charge.
#[test]
fn charge_conservation() {
    let mut cases = Cases::new(1);
    for _ in 0..CASES {
        let params = cases.params();
        let current = cases.range(0.0, 2.0);
        let duration = cases.range(0.0, 30.0);
        let full = TransformedState::full(&params);
        let after = evolve(&params, full, current, duration).unwrap();
        let drawn = current * duration;
        assert!(
            (full.gamma - after.gamma - drawn).abs() < 1e-9,
            "charge not conserved for {params:?}, I={current}, t={duration}"
        );
    }
}

/// The height difference never becomes negative when starting from a
/// non-negative one, and relaxes towards zero under zero load.
#[test]
fn height_difference_nonnegative_and_relaxing() {
    let mut cases = Cases::new(2);
    for _ in 0..CASES {
        let params = cases.params();
        let current = cases.range(0.0, 2.0);
        let duration = cases.range(0.0, 30.0);
        let rest = cases.range(0.0, 60.0);
        let full = TransformedState::full(&params);
        let loaded = evolve(&params, full, current, duration).unwrap();
        assert!(loaded.delta >= -1e-12);
        let rested = evolve(&params, loaded, 0.0, rest).unwrap();
        assert!(rested.delta <= loaded.delta + 1e-12);
        assert!(rested.delta >= -1e-12);
    }
}

/// Coordinate transformation round-trips.
#[test]
fn coordinate_round_trip() {
    let mut cases = Cases::new(3);
    for _ in 0..CASES {
        let params = cases.params();
        let available = cases.range(0.0, 10.0);
        let bound = cases.range(0.0, 10.0);
        let state = kibam::TwoWellState::new(available, bound).unwrap();
        let back = state.to_transformed(&params).to_two_well(&params);
        assert!((back.available() - available).abs() < 1e-8);
        assert!((back.bound() - bound).abs() < 1e-8);
    }
}

/// Lifetime is antitone in the discharge current: a strictly larger constant
/// current can never yield a longer lifetime.
#[test]
fn lifetime_antitone_in_current() {
    let mut cases = Cases::new(4);
    for _ in 0..CASES {
        let params = cases.params();
        let base = cases.range(0.05, 1.0);
        let extra = cases.range(0.01, 1.0);
        let full = TransformedState::full(&params);
        let low = time_to_empty(&params, full, base).unwrap().unwrap();
        let high = time_to_empty(&params, full, base + extra).unwrap().unwrap();
        assert!(high <= low + 1e-9, "lifetime must shrink: {low} -> {high} for {params:?}");
    }
}

/// The delivered charge never exceeds the capacity, and the lifetime never
/// exceeds the ideal-battery lifetime C / I.
#[test]
fn rate_capacity_bounds() {
    let mut cases = Cases::new(5);
    for _ in 0..CASES {
        let params = cases.params();
        let current = cases.range(0.05, 2.0);
        let lifetime =
            time_to_empty(&params, TransformedState::full(&params), current).unwrap().unwrap();
        assert!(current * lifetime <= params.capacity() + 1e-9);
        assert!(lifetime <= params.capacity() / current + 1e-9);
    }
}

/// Inserting an idle period into a load never reduces the delivered charge
/// (the recovery effect).
#[test]
fn idle_period_never_reduces_delivered_charge() {
    let mut cases = Cases::new(6);
    // Fewer cases: each one iterates the segment solver many times.
    for _ in 0..CASES / 4 {
        let params = cases.params();
        let current = cases.range(0.1, 1.0);
        let idle = cases.range(0.1, 5.0);
        let job = Segment::new(current, 1.0).unwrap();
        let continuous = lifetime_for_segments(&params, std::iter::repeat(job)).unwrap();
        let idle_seg = Segment::idle(idle).unwrap();
        let intermittent =
            lifetime_for_segments(&params, std::iter::repeat([job, idle_seg]).flatten()).unwrap();
        assert!(
            intermittent.delivered_charge >= continuous.delivered_charge - 1e-9,
            "recovery must not reduce the deliverable charge: {} vs {}",
            intermittent.delivered_charge,
            continuous.delivered_charge
        );
    }
}
