//! Property-based tests of the continuous KiBaM invariants.

use kibam::analytic::{evolve, time_to_empty};
use kibam::lifetime::{lifetime_for_segments, Segment};
use kibam::{BatteryParams, TransformedState};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = BatteryParams> {
    (0.5f64..50.0, 0.05f64..0.95, 0.01f64..2.0)
        .prop_map(|(cap, c, k)| BatteryParams::new(cap, c, k).expect("valid params"))
}

proptest! {
    /// Total charge is conserved: whatever is drawn plus whatever remains
    /// equals the initial charge.
    #[test]
    fn charge_conservation(
        params in params_strategy(),
        current in 0.0f64..2.0,
        duration in 0.0f64..30.0,
    ) {
        let full = TransformedState::full(&params);
        let after = evolve(&params, full, current, duration).unwrap();
        let drawn = current * duration;
        prop_assert!((full.gamma - after.gamma - drawn).abs() < 1e-9);
    }

    /// The height difference never becomes negative when starting from a
    /// non-negative one, and relaxes towards zero under zero load.
    #[test]
    fn height_difference_nonnegative_and_relaxing(
        params in params_strategy(),
        current in 0.0f64..2.0,
        duration in 0.0f64..30.0,
        rest in 0.0f64..60.0,
    ) {
        let full = TransformedState::full(&params);
        let loaded = evolve(&params, full, current, duration).unwrap();
        prop_assert!(loaded.delta >= -1e-12);
        let rested = evolve(&params, loaded, 0.0, rest).unwrap();
        prop_assert!(rested.delta <= loaded.delta + 1e-12);
        prop_assert!(rested.delta >= -1e-12);
    }

    /// Coordinate transformation round-trips.
    #[test]
    fn coordinate_round_trip(
        params in params_strategy(),
        available in 0.0f64..10.0,
        bound in 0.0f64..10.0,
    ) {
        let state = kibam::TwoWellState::new(available, bound).unwrap();
        let back = state.to_transformed(&params).to_two_well(&params);
        prop_assert!((back.available() - available).abs() < 1e-8);
        prop_assert!((back.bound() - bound).abs() < 1e-8);
    }

    /// Lifetime is antitone in the discharge current: a strictly larger
    /// constant current can never yield a longer lifetime.
    #[test]
    fn lifetime_antitone_in_current(
        params in params_strategy(),
        base in 0.05f64..1.0,
        extra in 0.01f64..1.0,
    ) {
        let full = TransformedState::full(&params);
        let low = time_to_empty(&params, full, base).unwrap().unwrap();
        let high = time_to_empty(&params, full, base + extra).unwrap().unwrap();
        prop_assert!(high <= low + 1e-9);
    }

    /// The delivered charge never exceeds the capacity, and the lifetime
    /// never exceeds the ideal-battery lifetime C / I.
    #[test]
    fn rate_capacity_bounds(
        params in params_strategy(),
        current in 0.05f64..2.0,
    ) {
        let lifetime = time_to_empty(&params, TransformedState::full(&params), current)
            .unwrap()
            .unwrap();
        prop_assert!(current * lifetime <= params.capacity() + 1e-9);
        prop_assert!(lifetime <= params.capacity() / current + 1e-9);
    }

    /// Inserting an idle period into a load never shortens the lifetime by
    /// more than the idle duration itself and never reduces the delivered
    /// charge (the recovery effect).
    #[test]
    fn idle_period_never_reduces_delivered_charge(
        params in params_strategy(),
        current in 0.1f64..1.0,
        idle in 0.1f64..5.0,
    ) {
        let job = Segment::new(current, 1.0).unwrap();
        let continuous = lifetime_for_segments(&params, std::iter::repeat(job)).unwrap();
        let idle_seg = Segment::idle(idle).unwrap();
        let intermittent = lifetime_for_segments(
            &params,
            std::iter::repeat([job, idle_seg]).flatten(),
        )
        .unwrap();
        prop_assert!(
            intermittent.delivered_charge >= continuous.delivered_charge - 1e-9,
            "recovery must not reduce the deliverable charge: {} vs {}",
            intermittent.delivered_charge,
            continuous.delivered_charge
        );
    }
}
