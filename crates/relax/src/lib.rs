//! Integer LP / min-cost-flow relaxation of the (epoch × battery)
//! allocation polytope.
//!
//! The battery-scheduling search assigns every draw slot of the load to
//! exactly one battery. Relaxing the integrality (a slot may be split
//! across batteries) and the interleaving dynamics (only each battery's
//! *cumulative* service up to every epoch end is constrained) leaves a
//! transportation problem over prefix capacities:
//!
//! * battery `i` may serve at most `columns[i][e]` units among epochs
//!   `0..=e` (a non-decreasing *column* produced by the exact
//!   single-battery DP in `dkibam`);
//! * epoch `e` offers `demands[e]` units that want covering.
//!
//! Because the capacity rows are prefix constraints, the min cut of the
//! corresponding flow network is **laminar**: it always cuts every
//! battery chain at one common epoch threshold `t` plus all later demand
//! arcs. [`coverage_bound`] evaluates that closed form directly — an
//! `O(B·E)` walk — and [`max_coverage`] solves the same network with an
//! actual successive-shortest-path min-cost flow, returning a concrete
//! integral assignment (used to round a warm-start schedule). The search
//! bound in `battery-sched` uses the closed-form walk per node; the flow
//! solver cross-checks the equality in tests and powers the rounding.
//!
//! Everything here is integer arithmetic on `u64` capacities with `i64`
//! arc costs (distances in `i128`), deterministic, allocation-light and
//! panic-free: malformed inputs degrade to the empty relaxation instead
//! of aborting a search.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;

/// A large-but-safe arc capacity standing in for "unbounded".
const UNBOUNDED: u64 = u64::MAX / 4;

/// Distance sentinel for unreached nodes.
const UNREACHED: i128 = i128::MAX / 4;

/// A small dense min-cost max-flow solver (successive shortest paths with
/// SPFA label correcting). Arc order is insertion order and relaxations
/// are strict, so identical inputs produce identical flows.
#[derive(Debug, Clone, Default)]
pub struct MinCostFlow {
    /// Adjacency: arc ids leaving each node (forward and residual arcs).
    adjacency: Vec<Vec<u32>>,
    to: Vec<u32>,
    cap: Vec<u64>,
    cost: Vec<i64>,
}

impl MinCostFlow {
    /// Creates a solver over `nodes` nodes (ids `0..nodes`).
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); nodes],
            to: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
        }
    }

    /// Adds a directed arc `from → to` with capacity `cap` and
    /// per-unit cost `cost ≥ 0`, returning its id (for
    /// [`MinCostFlow::flow_on`]). Out-of-range endpoints make the arc
    /// inert (capacity zero on node 0) instead of panicking.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: u64, cost: i64) -> usize {
        debug_assert!(cost >= 0, "negative arc costs break SSP termination");
        let id = self.to.len();
        let (from, to, cap) = if from < self.adjacency.len() && to < self.adjacency.len() {
            (from, to, cap)
        } else {
            (0, 0, 0)
        };
        // Forward arc (even id) and residual arc (odd id).
        self.to.push(crate::checked_u32(to));
        self.cap.push(cap);
        self.cost.push(cost);
        self.to.push(crate::checked_u32(from));
        self.cap.push(0);
        self.cost.push(-cost);
        self.adjacency[from].push(crate::checked_u32(id));
        self.adjacency[to].push(crate::checked_u32(id + 1));
        id
    }

    /// Pushes as much flow as possible from `source` to `sink`, cheapest
    /// augmenting paths first. Returns the total flow.
    pub fn solve(&mut self, source: usize, sink: usize) -> u64 {
        if source >= self.adjacency.len() || sink >= self.adjacency.len() || source == sink {
            return 0;
        }
        let nodes = self.adjacency.len();
        let mut total = 0u64;
        let mut dist = vec![UNREACHED; nodes];
        let mut parent = vec![u32::MAX; nodes];
        let mut queued = vec![false; nodes];
        // Each augmentation saturates at least one arc of a shortest path;
        // with non-negative costs the number of augmentations is bounded,
        // but keep an explicit guard so a malformed network cannot spin.
        let mut guard = self.to.len().saturating_mul(4).max(64);
        loop {
            guard = match guard.checked_sub(1) {
                Some(left) => left,
                None => break,
            };
            // SPFA from source: strict relaxations, FIFO order.
            dist.iter_mut().for_each(|d| *d = UNREACHED);
            parent.iter_mut().for_each(|p| *p = u32::MAX);
            queued.iter_mut().for_each(|q| *q = false);
            dist[source] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(checked_u32(source));
            queued[source] = true;
            while let Some(node) = queue.pop_front() {
                let node = index(node);
                queued[node] = false;
                let here = dist[node];
                for slot in 0..self.adjacency[node].len() {
                    let arc = index(self.adjacency[node][slot]);
                    if self.cap[arc] == 0 {
                        continue;
                    }
                    let next = index(self.to[arc]);
                    let candidate = here + i128::from(self.cost[arc]);
                    if candidate < dist[next] {
                        dist[next] = candidate;
                        parent[next] = checked_u32(arc);
                        if !queued[next] {
                            queue.push_back(checked_u32(next));
                            queued[next] = true;
                        }
                    }
                }
            }
            if dist[sink] >= UNREACHED {
                break;
            }
            // Bottleneck along the recorded shortest path, then augment.
            let mut bottleneck = u64::MAX;
            let mut node = sink;
            while node != source {
                let arc = index(parent[node]);
                if arc >= self.cap.len() {
                    return total;
                }
                bottleneck = bottleneck.min(self.cap[arc]);
                node = index(self.to[arc ^ 1]);
            }
            if bottleneck == 0 || bottleneck == u64::MAX {
                break;
            }
            let mut node = sink;
            while node != source {
                let arc = index(parent[node]);
                self.cap[arc] -= bottleneck;
                self.cap[arc ^ 1] += bottleneck;
                node = index(self.to[arc ^ 1]);
            }
            total = total.saturating_add(bottleneck);
        }
        total
    }

    /// The flow carried by the arc returned from [`MinCostFlow::add_arc`]
    /// (the residual capacity of its reverse arc).
    #[must_use]
    pub fn flow_on(&self, arc: usize) -> u64 {
        self.cap.get(arc | 1).copied().unwrap_or(0)
    }
}

/// `usize → u32` for node/arc ids (graphs here are far below `u32::MAX`).
fn checked_u32(value: usize) -> u32 {
    debug_assert!(u32::try_from(value).is_ok(), "graph id {value} exceeds u32");
    // xlint: allow(cast) -- the debug_assert above pins the u32 range
    value as u32
}

/// `u32 → usize` for node/arc ids (lossless on 32/64-bit targets).
fn index(value: u32) -> usize {
    // xlint: allow(cast) -- u32 -> usize is lossless on 32/64-bit targets
    value as usize
}

/// The maximum coverage and a concrete assignment achieving it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    /// Total units covered over all epochs (`≤ Σ demands`).
    pub total: u64,
    /// `assignment[i][e]` = units battery `i` serves in epoch `e`.
    pub assignment: Vec<Vec<u64>>,
}

/// Truncates the instance to a consistent epoch count: the shortest of
/// `demands` and every column.
fn epoch_count<C: AsRef<[u64]>>(columns: &[C], demands: &[u64]) -> usize {
    columns
        .iter()
        .map(|column| column.as_ref().len())
        .chain(std::iter::once(demands.len()))
        .min()
        .unwrap_or(0)
}

/// The closed-form LP optimum of the prefix-capacity transportation
/// problem: because the columns are cumulative (non-decreasing), the min
/// cut always takes one common epoch threshold `t` — every battery chain
/// cut at `t`, every later demand arc cut — so
///
/// ```text
/// coverage = min over t in {-1, 0, .., E-1} of
///            Σ_i columns[i][t]  +  Σ_{e > t} demands[e]
/// ```
///
/// (`t = -1` contributes the bare `Σ demands`). Equality with the actual
/// flow optimum of [`max_coverage`] is asserted in tests; the search
/// bound uses this walk, which is `O(B·E)` and allocation-free.
#[must_use]
pub fn coverage_bound<C: AsRef<[u64]>>(columns: &[C], demands: &[u64]) -> u64 {
    let epochs = epoch_count(columns, demands);
    let mut suffix: u64 = demands.iter().take(epochs).sum();
    let mut best = suffix; // t = -1: cut every demand arc.
    for (e, &demand) in demands.iter().enumerate().take(epochs) {
        suffix = suffix.saturating_sub(demand);
        let chains: u64 =
            columns.iter().map(|column| column.as_ref()[e]).fold(0, u64::saturating_add);
        best = best.min(chains.saturating_add(suffix));
    }
    best
}

/// The first epoch index whose cumulative demand exceeds the summed
/// cumulative capacities — the epoch the relaxed system dies in — or
/// `None` if the relaxation covers every epoch.
#[must_use]
pub fn first_shortfall<C: AsRef<[u64]>>(columns: &[C], demands: &[u64]) -> Option<usize> {
    let epochs = epoch_count(columns, demands);
    let mut cumulative = 0u64;
    for (e, &demand) in demands.iter().enumerate().take(epochs) {
        cumulative = cumulative.saturating_add(demand);
        let capacity: u64 =
            columns.iter().map(|column| column.as_ref()[e]).fold(0, u64::saturating_add);
        if cumulative > capacity {
            return Some(e);
        }
    }
    None
}

/// Solves the prefix-capacity transportation problem with a min-cost
/// max-flow and returns an integral assignment.
///
/// Among all maximum-coverage flows, the costs prefer (in order):
/// covering *early* epochs — an uncovered early epoch ends the system's
/// life regardless of later coverage — and a round-robin rotation of the
/// batteries within each epoch, which is the alternation shape that wins
/// on the paper's `ILs alt` loads. The rotation is only a tie-break among
/// optimal flows; [`Coverage::total`] always equals [`coverage_bound`].
#[must_use]
pub fn max_coverage<C: AsRef<[u64]>>(columns: &[C], demands: &[u64]) -> Coverage {
    let epochs = epoch_count(columns, demands);
    let batteries = columns.len();
    let mut assignment = vec![vec![0u64; epochs]; batteries];
    if epochs == 0 || batteries == 0 {
        return Coverage { total: 0, assignment };
    }
    // Node layout: source, E epoch nodes, B×E chain nodes, sink.
    let source = 0usize;
    let epoch_node = |e: usize| 1 + e;
    let chain_node = |i: usize, e: usize| 1 + epochs + i * epochs + e;
    let sink = 1 + epochs + batteries * epochs;
    let mut network = MinCostFlow::new(sink + 1);
    // Rotation costs stay below this per-epoch priority step.
    let priority = i64::try_from(batteries).unwrap_or(i64::MAX).saturating_mul(2).max(16);
    for (e, &demand) in demands.iter().enumerate().take(epochs) {
        let lateness = i64::try_from(e).unwrap_or(i64::MAX).saturating_mul(priority);
        network.add_arc(source, epoch_node(e), demand, lateness);
    }
    let mut epoch_arcs = vec![vec![usize::MAX; epochs]; batteries];
    for (i, column) in columns.iter().enumerate() {
        let column = column.as_ref();
        for e in 0..epochs {
            // Round-robin rotation: epoch e's preferred battery is
            // e mod B (cost 0), then e+1 mod B, ...
            let rotation = (i + batteries - e % batteries) % batteries;
            let bias = i64::try_from(rotation).unwrap_or(0);
            epoch_arcs[i][e] = network.add_arc(epoch_node(e), chain_node(i, e), UNBOUNDED, bias);
            // Chain arc carrying battery i's cumulative service through
            // epoch e: capacity columns[i][e].
            let next = if e + 1 < epochs { chain_node(i, e + 1) } else { sink };
            network.add_arc(chain_node(i, e), next, column[e], 0);
        }
    }
    let total = network.solve(source, sink);
    for (i, arcs) in epoch_arcs.iter().enumerate() {
        for (e, &arc) in arcs.iter().enumerate() {
            assignment[i][e] = network.flow_on(arc);
        }
    }
    Coverage { total, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random u64 stream (xorshift).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next() % bound
            }
        }
    }

    /// Random monotone columns + demands.
    fn random_instance(seed: u64, batteries: usize, epochs: usize) -> (Vec<Vec<u64>>, Vec<u64>) {
        let mut rng = Rng(seed | 1);
        let mut columns = Vec::new();
        for _ in 0..batteries {
            let mut column = Vec::with_capacity(epochs);
            let mut level = 0u64;
            for _ in 0..epochs {
                level += rng.below(7);
                column.push(level);
            }
            columns.push(column);
        }
        let demands = (0..epochs).map(|_| rng.below(9)).collect();
        (columns, demands)
    }

    #[test]
    fn flow_matches_the_laminar_cut_closed_form() {
        for seed in 1..40u64 {
            let (columns, demands) = random_instance(seed, 1 + (seed as usize % 4), 12);
            let cut = coverage_bound(&columns, &demands);
            let flow = max_coverage(&columns, &demands);
            assert_eq!(flow.total, cut, "seed {seed}: flow vs closed-form cut");
        }
    }

    #[test]
    fn feasibility_walk_agrees_with_full_coverage() {
        for seed in 1..40u64 {
            let (columns, demands) = random_instance(seed, 2, 10);
            let total: u64 = demands.iter().sum();
            let covered = coverage_bound(&columns, &demands);
            assert_eq!(
                first_shortfall(&columns, &demands).is_none(),
                covered == total,
                "seed {seed}: shortfall iff coverage < demand"
            );
        }
    }

    #[test]
    fn assignments_respect_prefix_capacities_and_demands() {
        for seed in 1..25u64 {
            let (columns, demands) = random_instance(seed, 3, 8);
            let coverage = max_coverage(&columns, &demands);
            let mut served_total = 0u64;
            for e in 0..demands.len() {
                let epoch_total: u64 = coverage.assignment.iter().map(|a| a[e]).sum();
                assert!(epoch_total <= demands[e], "seed {seed}: epoch {e} over-served");
                served_total += epoch_total;
            }
            assert_eq!(served_total, coverage.total);
            for (i, column) in columns.iter().enumerate() {
                let mut cumulative = 0u64;
                for (e, &cap) in column.iter().enumerate().take(demands.len()) {
                    cumulative += coverage.assignment[i][e];
                    assert!(
                        cumulative <= cap,
                        "seed {seed}: battery {i} breaks its prefix cap at epoch {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn early_epochs_are_covered_first() {
        // One battery, cap 5 total from the start; three epochs of 3: the
        // priority costs must cover epochs 0 and 1 before epoch 2.
        let columns = vec![vec![5, 5, 5]];
        let demands = vec![3, 3, 3];
        let coverage = max_coverage(&columns, &demands);
        assert_eq!(coverage.total, 5);
        assert_eq!(coverage.assignment[0], vec![3, 2, 0]);
    }

    #[test]
    fn rotation_spreads_uniform_fleets() {
        // Two identical batteries, each able to serve one unit per epoch
        // cumulatively; demand one unit per epoch: the rotation tie-break
        // alternates them.
        let columns = vec![vec![1, 1, 2, 2], vec![1, 1, 2, 2]];
        let demands = vec![1, 1, 1, 1];
        let coverage = max_coverage(&columns, &demands);
        assert_eq!(coverage.total, 4);
        assert_eq!(coverage.assignment[0], vec![1, 0, 1, 0]);
        assert_eq!(coverage.assignment[1], vec![0, 1, 0, 1]);
    }

    #[test]
    fn solver_is_deterministic() {
        let (columns, demands) = random_instance(97, 4, 16);
        let a = max_coverage(&columns, &demands);
        let b = max_coverage(&columns, &demands);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs_are_harmless() {
        let no_columns: &[Vec<u64>] = &[];
        assert_eq!(coverage_bound(no_columns, &[]), 0);
        assert_eq!(first_shortfall(no_columns, &[1]), Some(0));
        let empty = max_coverage(no_columns, &[3, 3]);
        assert_eq!(empty.total, 0);
        // Mismatched column lengths truncate to the shortest.
        let ragged = max_coverage(&[vec![2, 2, 2], vec![1]], &[1, 1, 1]);
        assert_eq!(ragged.total, coverage_bound(&[vec![2, 2, 2], vec![1]], &[1, 1, 1]));
        // An out-of-range arc is inert rather than a panic.
        let mut network = MinCostFlow::new(2);
        let arc = network.add_arc(0, 7, 10, 0);
        assert_eq!(network.solve(0, 1), 0);
        assert_eq!(network.flow_on(arc), 0);
        assert_eq!(network.flow_on(999), 0);
    }

    #[test]
    fn straight_line_network_saturates() {
        let mut network = MinCostFlow::new(3);
        let a = network.add_arc(0, 1, 5, 1);
        let b = network.add_arc(1, 2, 3, 1);
        assert_eq!(network.solve(0, 2), 3);
        assert_eq!(network.flow_on(a), 3);
        assert_eq!(network.flow_on(b), 3);
    }
}
