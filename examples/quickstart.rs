//! Quickstart: model a battery, define a load, compare scheduling policies.
//!
//! Run with `cargo run --example quickstart`.

use battery_sched::policy::{BestAvailable, RoundRobin, SchedulingPolicy, Sequential};
use battery_sched::system::{simulate_policy, SystemConfig};
use dkibam::Discretization;
use kibam::lifetime::{lifetime_for_segments, Segment};
use kibam::BatteryParams;
use workload::builder::LoadProfileBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A single battery under a constant load (the continuous KiBaM).
    let b1 = BatteryParams::itsy_b1();
    let constant_load = std::iter::repeat(Segment::new(0.25, 1.0)?);
    let single = lifetime_for_segments(&b1, constant_load).expect("battery empties");
    println!("single B1 battery, continuous 250 mA: {:.2} min lifetime", single.lifetime);
    println!(
        "  charge delivered: {:.2} A·min, charge stranded: {:.2} A·min",
        single.delivered_charge, single.residual_charge
    );

    // 2. A custom intermittent load: 1-minute 500 mA bursts, 90 s of idle.
    let load = LoadProfileBuilder::new().job(0.5, 1.0).idle(1.5).build_cyclic()?;

    // 3. Two batteries plus a scheduling policy.
    let config = SystemConfig::new(b1, Discretization::paper_default(), 2)?;
    for policy in [
        &mut Sequential::new() as &mut dyn SchedulingPolicy,
        &mut RoundRobin::new(),
        &mut BestAvailable::new(),
    ] {
        let outcome = simulate_policy(&config, &load, policy)?;
        println!(
            "two batteries, {:<12}: {:.2} min lifetime, {:>5.2} A·min left in the cells",
            policy.name(),
            outcome.lifetime_minutes().unwrap_or(f64::NAN),
            outcome.residual_charge(),
        );
    }
    Ok(())
}
