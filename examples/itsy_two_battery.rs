//! The paper's headline experiment: the Itsy pocket computer powered by two
//! B1 batteries, running the ten test loads of Section 5, scheduled by the
//! three deterministic policies (Table 5) — plus the optimal schedule for
//! the alternating load, found by the branch-and-bound search.
//!
//! Run with `cargo run --release --example itsy_two_battery`.

use battery_sched::optimal::OptimalScheduler;
use battery_sched::report::{deterministic_lifetimes, table5_row};
use battery_sched::system::SystemConfig;
use dkibam::Discretization;
use kibam::BatteryParams;
use workload::paper_loads::TestLoad;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::paper_two_b1();
    println!("Two Itsy B1 batteries (5.5 A·min each), paper discretization\n");
    println!("{:<8} {:>11} {:>12} {:>12}", "load", "sequential", "round robin", "best-of-two");
    for load in TestLoad::all() {
        let (seq, rr, best) = deterministic_lifetimes(&config, &load.profile())?;
        println!("{:<8} {:>11.2} {:>12.2} {:>12.2}", load.name(), seq, rr, best);
    }

    // The optimal schedule for the load where it matters most (ILs alt),
    // computed on the coarse grid so the exact search stays fast.
    let coarse = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2)?;
    let row = table5_row(TestLoad::IlsAlt, &coarse, Some(&OptimalScheduler::new()))?;
    println!(
        "\nILs alt on the coarse grid: round robin {:.2} min, best-of-two {:.2} min, optimal {:.2} min",
        row.round_robin_minutes,
        row.best_of_two_minutes,
        row.optimal_minutes.unwrap_or(f64::NAN),
    );
    println!(
        "(the paper reports 12.82 / 16.30 / 16.91 minutes — an up to ~32 % gain over round robin)"
    );
    Ok(())
}
