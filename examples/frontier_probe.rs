//! Probes the alternating-load search frontier: root upper bounds and
//! branch-and-bound node counts under each bound ablation.
//!
//! The `ILs alt` load strands ~70 % of the fleet's charge, so the charge
//! bound wildly overestimates the remaining lifetime and 3+-battery
//! searches historically relied on state-space reduction alone. This probe
//! prints, for each fleet,
//!
//! * the root values of all three upper bounds (charge, availability,
//!   min-cost-flow relaxation) next to the warm-start incumbent (how tight
//!   is each bound before a single node is explored?), and
//! * the full search (relaxation on) against the relaxation-ablated and
//!   the charge-only searches (what does each bound buy in nodes?).
//!
//! ```text
//! cargo run --release --example frontier_probe [NODE_BUDGET] [--smoke]
//! ```
//!
//! The default budget keeps the probe fast; pass a larger budget to
//! measure how far a search gets before giving up. `--smoke` restricts
//! the searches to the cheap fleets (2×B1 and 3×B1) so CI can exercise
//! the probe end-to-end in seconds; the root-bound table still covers
//! every fleet (bounds are a few policy simulations plus one relaxation
//! solve, not searches).

use battery_sched::optimal::OptimalScheduler;
use battery_sched::system::SystemConfig;
use dkibam::Discretization;
use kibam::{BatteryParams, FleetSpec};
use std::time::Instant;
use workload::paper_loads::TestLoad;

fn main() {
    let mut smoke = false;
    let mut budget: Option<usize> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                budget = Some(other.parse().expect("NODE_BUDGET must be an integer"));
            }
        }
    }
    // The smoke budget contains the 3xB1 availability-ablated search
    // (~208.5k nodes), so a clean run explores every smoke case fully.
    let budget = budget.unwrap_or(if smoke { 300_000 } else { 2_000_000 });

    let disc = Discretization::coarse();
    let cases: Vec<(&str, SystemConfig)> = vec![
        ("2xB1", SystemConfig::new(BatteryParams::itsy_b1(), disc, 2).unwrap()),
        ("3xB1", SystemConfig::new(BatteryParams::itsy_b1(), disc, 3).unwrap()),
        (
            "2xB1+B2",
            SystemConfig::from_fleet(
                FleetSpec::new(vec![
                    BatteryParams::itsy_b1(),
                    BatteryParams::itsy_b1(),
                    BatteryParams::itsy_b2(),
                ])
                .unwrap(),
                disc,
            ),
        ),
        ("4xB1", SystemConfig::new(BatteryParams::itsy_b1(), disc, 4).unwrap()),
    ];
    let load = TestLoad::IlsAlt.profile();

    println!("root bounds on ILs alt (coarse grid):");
    for (name, config) in &cases {
        let discretized = config.discretize(&load).unwrap();
        let mut model = config.discretized_model();
        let bounds = OptimalScheduler::probe_root_bounds(config, &discretized, &mut model).unwrap();
        println!(
            "  {name:>8}: charge {}, availability {}, relaxation {}, warm start {}",
            bounds.charge, bounds.availability, bounds.relaxation, bounds.warm_start
        );
    }

    println!("\nsearches (budget {budget} nodes):");
    let searched: &[(&str, SystemConfig)] = if smoke { &cases[..2] } else { &cases[..] };
    for (name, config) in searched {
        for (which, scheduler) in [
            ("relax", OptimalScheduler::with_budget(budget)),
            ("avail", OptimalScheduler::with_budget(budget).without_relax_bound()),
            (
                "charge",
                OptimalScheduler::with_budget(budget)
                    .without_relax_bound()
                    .without_availability_bound(),
            ),
        ] {
            let start = Instant::now();
            match scheduler.find_optimal(config, &load) {
                Ok(outcome) => println!(
                    "  {name:>8} {which:>6}: {} steps, {} nodes, memo {}, dom {}, charge {}, \
                     avail {}, relax {}, seeded {:?}, {:.2?}",
                    outcome.lifetime_steps,
                    outcome.nodes_explored,
                    outcome.memo_hits,
                    outcome.dominance_prunes,
                    outcome.charge_bound_prunes,
                    outcome.availability_bound_prunes,
                    outcome.relax_bound_prunes,
                    outcome.seeded_by,
                    start.elapsed()
                ),
                Err(error) => {
                    println!("  {name:>8} {which:>6}: {error} ({:.2?})", start.elapsed());
                }
            }
        }
    }
}
