//! A sensor-node style what-if planner — the outlook of Section 7 of the
//! paper: for a node with a simple regular workload, explore how duty cycle
//! and battery count affect the achievable operating time.
//!
//! Run with `cargo run --release --example sensor_node_planner`.

use battery_sched::policy::BestAvailable;
use battery_sched::system::{simulate_policy, SystemConfig};
use dkibam::Discretization;
use kibam::BatteryParams;
use workload::builder::LoadProfileBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = BatteryParams::itsy_b1();
    println!(
        "Sensor node planner: 300 mA sensing burst of 30 s, varying sleep time and cell count\n"
    );
    println!("{:>10} {:>8} {:>14} {:>16}", "sleep (s)", "cells", "lifetime (min)", "bursts served");

    for sleep_seconds in [30.0_f64, 60.0, 120.0] {
        for cells in [1usize, 2, 3] {
            let load = LoadProfileBuilder::new()
                .job(0.3, 0.5)
                .idle(sleep_seconds / 60.0)
                .build_cyclic()?;
            let config = SystemConfig::new(cell, Discretization::paper_default(), cells)?;
            let outcome = simulate_policy(&config, &load, &mut BestAvailable::new())?;
            let lifetime = outcome.lifetime_minutes().unwrap_or(f64::NAN);
            let bursts = outcome.schedule().assignments.len();
            println!("{sleep_seconds:>10.0} {cells:>8} {lifetime:>14.1} {bursts:>16}");
        }
    }
    println!("\nLonger sleep periods exploit the recovery effect: the same cells serve");
    println!("disproportionately more bursts, and extra cells scheduled best-first add further headroom.");
    Ok(())
}
