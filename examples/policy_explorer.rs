//! Policy explorer: generate random intermittent workloads and measure how
//! often (and by how much) best-of-two beats round robin, and what the
//! optimal schedule adds on top — the "realistic random loads" direction
//! the paper lists as future work.
//!
//! Run with `cargo run --release --example policy_explorer [seed-count]`.

use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::{BestAvailable, RoundRobin};
use battery_sched::system::{simulate_policy_on, SystemConfig};
use dkibam::Discretization;
use kibam::BatteryParams;
use workload::random::RandomLoadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let spec = RandomLoadSpec::new(vec![0.25, 0.5], 1.0, 1.0, 200)?;
    let config = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2)?;
    let scheduler = OptimalScheduler::new();

    println!("Random ILs-style loads on 2 x B1 (coarse grid), {seeds} seeds\n");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10}",
        "seed", "round robin", "best-of-two", "optimal", "opt gain"
    );
    let mut best_wins = 0usize;
    for seed in 0..seeds {
        let load = spec.generate(seed)?;
        let discretized = config.discretize(&load)?;
        let rr = simulate_policy_on(&config, &discretized, &mut RoundRobin::new())?
            .lifetime_minutes()
            .unwrap_or(f64::NAN);
        let best = simulate_policy_on(&config, &discretized, &mut BestAvailable::new())?
            .lifetime_minutes()
            .unwrap_or(f64::NAN);
        let optimal = scheduler.find_optimal_on(&config, &discretized)?.lifetime_minutes(&config);
        if best > rr + 1e-9 {
            best_wins += 1;
        }
        println!(
            "{seed:>6} {rr:>12.2} {best:>12.2} {optimal:>10.2} {:>9.1}%",
            100.0 * (optimal - rr) / rr
        );
    }
    println!("\nbest-of-two strictly beat round robin on {best_wins}/{seeds} random loads");
    Ok(())
}
