//! Cross-model validation: the paper's scheduling conclusions under the
//! Rakhmatov–Vrudhula diffusion backend.
//!
//! The reproduction's headline claims — battery scheduling extends system
//! lifetime, best-of-two ≥ round robin ≥ sequential, and the optimal
//! schedule beats every deterministic policy on alternating loads — are
//! only as strong as the battery model behind them. These tests replay the
//! claims against the RV diffusion backend (`battery_sched::backends::RvDiffusion`),
//! whose parameters are *fitted* from the KiBaM's (shared capacity, matched
//! short-time response slope and steady-state recovery gain) but whose
//! dynamics are a genuinely different chemistry, and pin the
//! discretized-vs-analytic agreement of the RV stepping form itself.

use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::{BestAvailable, RoundRobin, SchedulingPolicy, Sequential};
use battery_sched::system::{simulate_policy_with, SystemConfig};
use dkibam::Discretization;
use kibam::BatteryParams;
use rv::analytic::{evolve, time_to_empty, DiffusionState};
use rv::RvParams;
use workload::paper_loads::TestLoad;

fn paper_two_b1() -> SystemConfig {
    SystemConfig::paper_two_b1()
}

fn rv_lifetime(config: &SystemConfig, load: TestLoad, policy: &mut dyn SchedulingPolicy) -> f64 {
    let discretized = config.discretize(&load.profile()).unwrap();
    let mut model = config.rv_model();
    simulate_policy_with(config, &discretized, policy, &mut model)
        .unwrap()
        .lifetime_minutes()
        .expect("paper loads exhaust both batteries")
}

fn kibam_lifetime(config: &SystemConfig, load: TestLoad, policy: &mut dyn SchedulingPolicy) -> f64 {
    let discretized = config.discretize(&load.profile()).unwrap();
    let mut model = config.discretized_model();
    simulate_policy_with(config, &discretized, policy, &mut model)
        .unwrap()
        .lifetime_minutes()
        .expect("paper loads exhaust both batteries")
}

#[test]
fn policy_ranking_holds_under_rv_on_every_paper_load() {
    // Table 5's ranking — best-of-two ≥ round robin ≥ sequential — must
    // reproduce under the diffusion model on all ten paper loads (the
    // cross-model agreement the BENCH_crossmodel table archives).
    let config = paper_two_b1();
    for load in TestLoad::all() {
        let seq = rv_lifetime(&config, load, &mut Sequential::new());
        let rr = rv_lifetime(&config, load, &mut RoundRobin::new());
        let best = rv_lifetime(&config, load, &mut BestAvailable::new());
        assert!(seq <= rr + 0.03, "{load}: RV sequential {seq} must not beat round robin {rr}");
        assert!(rr <= best + 0.03, "{load}: RV round robin {rr} must not beat best-of-two {best}");
    }
}

#[test]
fn best_of_two_still_wins_the_alternating_load_under_rv() {
    // The paper's sharpest deterministic-policy result: best-of-two gains
    // ~27 % over round robin on ILs alt. The diffusion model reproduces a
    // clear gain too — the recovery effect the policy exploits is not a
    // KiBaM artifact.
    let config = paper_two_b1();
    let rr = rv_lifetime(&config, TestLoad::IlsAlt, &mut RoundRobin::new());
    let best = rv_lifetime(&config, TestLoad::IlsAlt, &mut BestAvailable::new());
    assert!(best > rr * 1.15, "RV best-of-two {best} should clearly beat round robin {rr}");
}

#[test]
fn rv_and_kibam_lifetimes_agree_on_intermittent_scheduling_loads() {
    // The fit matches the deficit response at both ends, so on the
    // one-minute-idle loads the scheduling study runs on, absolute
    // lifetimes land within ~20 % of the KiBaM's. Constant loads integrate
    // the transient differences, and the two-minute-idle `IL'` loads let
    // the RV's slower modes keep recovering where the discretized KiBaM's
    // recovery floors at one height unit — both drift further, and the
    // crossmodel bench table records every cell.
    let config = paper_two_b1();
    for load in [TestLoad::Ils250, TestLoad::Ils500, TestLoad::IlsAlt] {
        let kibam = kibam_lifetime(&config, load, &mut RoundRobin::new());
        let rv = rv_lifetime(&config, load, &mut RoundRobin::new());
        let relative = (rv - kibam).abs() / kibam;
        assert!(relative < 0.2, "{load}: KiBaM {kibam:.2} vs RV {rv:.2} ({relative:.2} rel)");
    }
}

#[test]
fn rv_optimal_search_beats_every_deterministic_policy_on_ils_alt() {
    // The deeper claim behind Table 5's optimal column: a schedule that
    // plans recovery beats every greedy policy. On the coarse grid the RV
    // optimal search must dominate, with a clear margin on the
    // alternating load.
    let config = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2).unwrap();
    let load = config.discretize(&TestLoad::IlsAlt.profile()).unwrap();
    let mut model = config.rv_model();
    let optimal = OptimalScheduler::new().find_optimal_with(&config, &load, &mut model).unwrap();
    for policy in [
        &mut Sequential::new() as &mut dyn SchedulingPolicy,
        &mut RoundRobin::new(),
        &mut BestAvailable::new(),
    ] {
        let outcome = simulate_policy_with(&config, &load, policy, &mut model).unwrap();
        assert!(
            optimal.lifetime_steps >= outcome.lifetime_steps().unwrap(),
            "RV optimal must dominate {}",
            policy.name()
        );
    }
    let rr = simulate_policy_with(&config, &load, &mut RoundRobin::new(), &mut model)
        .unwrap()
        .lifetime_steps()
        .unwrap();
    #[allow(clippy::cast_precision_loss)]
    let gain = optimal.lifetime_steps as f64 / rr as f64;
    assert!(gain > 1.15, "RV optimal gains {gain:.2}x over round robin");
}

#[test]
fn discretized_stepping_matches_the_analytic_rv_model_at_fine_grids() {
    // Drive one battery through an intermittent 500 mA load (1 min on,
    // 1 min idle) twice: with the exact piecewise-analytic moment
    // evolution, and with the discretized stepping backend on a grid 5x
    // finer than the paper's. The observed lifetimes must agree to within
    // a couple of draw intervals.
    let params = RvParams::itsy_b1();
    let mut state = DiffusionState::full(&params);
    let mut analytic_minutes = 0.0;
    loop {
        if let Some(dt) = time_to_empty(&params, &state, 0.5).unwrap() {
            if dt <= 1.0 {
                analytic_minutes += dt;
                break;
            }
        }
        state = evolve(&params, &state, 0.5, 1.0).unwrap();
        analytic_minutes += 1.0;
        state = evolve(&params, &state, 0.0, 1.0).unwrap();
        analytic_minutes += 1.0;
        assert!(analytic_minutes < 1000.0, "analytic reference failed to terminate");
    }

    let disc = Discretization::new(0.002, 0.002).unwrap();
    let config = SystemConfig::new(BatteryParams::itsy_b1(), disc, 1).unwrap();
    let mut model = config.rv_model();
    use battery_sched::model::BatteryModel;
    let mut steps: u64 = 0;
    loop {
        // 1 min of 500 mA: 500 steps, one 0.002 A·min unit every 2 steps.
        let advance = model.advance_job(0, 500, 2, 1).unwrap();
        steps += advance.steps_consumed;
        if !advance.completed {
            break;
        }
        model.advance_idle(500);
        steps += 500;
        assert!(steps < 1_000_000, "discretized stepping failed to terminate");
    }
    let stepped_minutes = disc.steps_to_minutes(steps);
    assert!(
        (stepped_minutes - analytic_minutes).abs() < 0.02,
        "stepped {stepped_minutes} vs analytic {analytic_minutes}"
    );
}

#[test]
fn rv_backend_reports_its_name_through_the_simulator() {
    let config = paper_two_b1();
    let load = config.discretize(&TestLoad::Cl500.profile()).unwrap();
    let mut model = config.rv_model();
    let outcome = simulate_policy_with(&config, &load, &mut RoundRobin::new(), &mut model).unwrap();
    assert_eq!(outcome.backend(), "rv");
    assert!(outcome.residual_charge() > 0.0, "the RV model strands charge too");
}
