//! Golden equivalence of the fleet-first construction API.
//!
//! PR 3 rebuilt every constructor around [`kibam::FleetSpec`]. Two things
//! must hold for that redesign to be safe and useful:
//!
//! 1. **Uniform fleets are the old systems, bit for bit.** A fleet built
//!    with `FleetSpec::uniform(params, n)` must reproduce the
//!    `params × count` path exactly — same lifetimes in steps, same
//!    residual charge bits, same optimal search node counts — across every
//!    Table 3/5 load and policy.
//! 2. **Mixed fleets work end to end.** A 1×B1 + 1×B2 system runs through
//!    simulation and the optimal search, and the search dominates the
//!    deterministic policies (the Table 5 shape, on a fleet the paper could
//!    not express).

use battery_sched::model::BatteryModel;
use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::{BestAvailable, RoundRobin, SchedulingPolicy, Sequential};
use battery_sched::system::{simulate_policy, simulate_policy_with, SystemConfig};
use dkibam::Discretization;
use kibam::{BatteryParams, FleetSpec};
use workload::paper_loads::TestLoad;

fn policies() -> [fn() -> Box<dyn SchedulingPolicy>; 3] {
    [
        || Box::new(Sequential::new()),
        || Box::new(RoundRobin::new()),
        || Box::new(BestAvailable::new()),
    ]
}

/// The uniform-fleet constructor reproduces the `params × count` path
/// bit-identically for every paper load and policy on the discretized
/// backend (lifetime steps and residual-charge bits).
#[test]
fn uniform_fleet_is_bit_identical_to_params_times_count() {
    let params = BatteryParams::itsy_b1();
    let disc = Discretization::paper_default();
    let sugar = SystemConfig::new(params, disc, 2).unwrap();
    let fleet = SystemConfig::from_fleet(FleetSpec::uniform(params, 2).unwrap(), disc);
    assert_eq!(sugar, fleet, "the sugar constructor desugars to the same config");

    for load in TestLoad::all() {
        for policy in policies() {
            let a = simulate_policy(&sugar, &load.profile(), policy().as_mut()).unwrap();
            let b = simulate_policy(&fleet, &load.profile(), policy().as_mut()).unwrap();
            assert_eq!(
                a.lifetime_steps(),
                b.lifetime_steps(),
                "{load} {}: lifetimes must be bit-identical",
                policy().name()
            );
            assert_eq!(
                a.residual_charge().to_bits(),
                b.residual_charge().to_bits(),
                "{load} {}: residual charge must be bit-identical",
                policy().name()
            );
        }
    }
}

/// Table 5 golden values hold through the fleet path (ILs 500 row:
/// sequential 8.60, round robin 10.48, best-of-two 10.48).
#[test]
fn table5_values_reproduce_through_the_fleet_path() {
    let config = SystemConfig::from_fleet(
        FleetSpec::uniform(BatteryParams::itsy_b1(), 2).unwrap(),
        Discretization::paper_default(),
    );
    for (paper, policy) in [
        (8.60, &mut Sequential::new() as &mut dyn SchedulingPolicy),
        (10.48, &mut RoundRobin::new()),
        (10.48, &mut BestAvailable::new()),
    ] {
        let lifetime = simulate_policy(&config, &TestLoad::Ils500.profile(), policy)
            .unwrap()
            .lifetime_minutes()
            .unwrap();
        assert!((lifetime - paper).abs() < 0.15, "{}: {lifetime} vs paper {paper}", policy.name());
    }
}

/// Table 3 single-battery values hold for one-battery fleets on the
/// continuous backend (CL 500 on B1: 2.02 min).
#[test]
fn table3_values_reproduce_through_single_battery_fleets() {
    let config = SystemConfig::from_fleet(
        FleetSpec::uniform(BatteryParams::itsy_b1(), 1).unwrap(),
        Discretization::paper_default(),
    );
    let load = config.discretize(&TestLoad::Cl500.profile()).unwrap();
    let mut model = config.continuous_model();
    let lifetime = simulate_policy_with(&config, &load, &mut Sequential::new(), &mut model)
        .unwrap()
        .lifetime_minutes()
        .unwrap();
    assert!((lifetime - 2.02).abs() < 0.03, "CL 500 on B1: {lifetime} vs paper 2.02");
}

/// The optimal search is bit-identical between the two construction paths,
/// including its node counts — the type-grouped canonical keys reduce
/// exactly to the old global sort on uniform fleets, so memoization and
/// dominance pruning fire on the same nodes.
#[test]
fn optimal_search_is_bit_identical_between_construction_paths() {
    let params = BatteryParams::itsy_b1();
    let disc = Discretization::coarse();
    let sugar = SystemConfig::new(params, disc, 2).unwrap();
    let fleet = SystemConfig::from_fleet(FleetSpec::uniform(params, 2).unwrap(), disc);
    for load in [TestLoad::Cl500, TestLoad::IlsAlt, TestLoad::Ils250] {
        let a = OptimalScheduler::new().find_optimal(&sugar, &load.profile()).unwrap();
        let b = OptimalScheduler::new().find_optimal(&fleet, &load.profile()).unwrap();
        assert_eq!(a.lifetime_steps, b.lifetime_steps, "{load}: optimum must match");
        assert_eq!(a.decisions, b.decisions, "{load}: decisions must match");
        assert_eq!(a.nodes_explored, b.nodes_explored, "{load}: node counts must match");
        assert_eq!(a.memo_hits, b.memo_hits, "{load}: memo hits must match");
        assert_eq!(a.dominance_prunes, b.dominance_prunes, "{load}: prunes must match");
    }
}

/// The 1×B1 + 1×B2 smoke grid: the mixed fleet simulates and searches end
/// to end, the optimum dominates every deterministic policy, and the search
/// reports pruning work on the mixed state space.
#[test]
fn mixed_b1_b2_optimal_dominates_deterministic_policies() {
    let fleet = FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap();
    let config = SystemConfig::from_fleet(fleet, Discretization::coarse());
    for load in [TestLoad::Cl500, TestLoad::IlsAlt, TestLoad::Ils500] {
        let optimal = OptimalScheduler::new().find_optimal(&config, &load.profile()).unwrap();
        assert!(optimal.nodes_explored > 0);
        let mut best_policy = 0u64;
        for policy in policies() {
            let outcome = simulate_policy(&config, &load.profile(), policy().as_mut()).unwrap();
            let lifetime = outcome.lifetime_steps().unwrap();
            best_policy = best_policy.max(lifetime);
            assert!(
                optimal.lifetime_steps >= lifetime,
                "{load}: optimal {} must dominate {} ({lifetime})",
                optimal.lifetime_steps,
                policy().name()
            );
        }
        assert!(best_policy > 0, "{load}: the mixed fleet must serve the load");
    }
}

/// The mixed fleet outlives the paper's uniform pair: 16.5 A·min of mixed
/// capacity beats 11 A·min of 2×B1 under every policy on ILs 500.
#[test]
fn mixed_fleet_outlives_the_uniform_pair() {
    let disc = Discretization::paper_default();
    let uniform = SystemConfig::new(BatteryParams::itsy_b1(), disc, 2).unwrap();
    let mixed = SystemConfig::from_fleet(
        FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap(),
        disc,
    );
    for policy in policies() {
        let two_b1 = simulate_policy(&uniform, &TestLoad::Ils500.profile(), policy().as_mut())
            .unwrap()
            .lifetime_minutes()
            .unwrap();
        let b1_b2 = simulate_policy(&mixed, &TestLoad::Ils500.profile(), policy().as_mut())
            .unwrap()
            .lifetime_minutes()
            .unwrap();
        assert!(
            b1_b2 > two_b1,
            "{}: B1+B2 ({b1_b2}) must outlive 2xB1 ({two_b1})",
            policy().name()
        );
    }
}

/// The ideal backend bounds both KiBaM backends from above on every load
/// and fleet (no rate-capacity effect means no stranded charge).
#[test]
fn ideal_backend_is_an_upper_bound_for_kibam_backends() {
    let disc = Discretization::paper_default();
    for config in [
        SystemConfig::new(BatteryParams::itsy_b1(), disc, 2).unwrap(),
        SystemConfig::from_fleet(
            FleetSpec::new(vec![BatteryParams::itsy_b1(), BatteryParams::itsy_b2()]).unwrap(),
            disc,
        ),
    ] {
        for load in [TestLoad::Cl500, TestLoad::Ils500, TestLoad::IlsAlt] {
            let discretized_load = config.discretize(&load.profile()).unwrap();
            let mut ideal = config.ideal_model();
            let mut discretized = config.discretized_model();
            let ideal_lifetime = simulate_policy_with(
                &config,
                &discretized_load,
                &mut RoundRobin::new(),
                &mut ideal,
            )
            .unwrap()
            .lifetime_steps();
            let kibam_lifetime = simulate_policy_with(
                &config,
                &discretized_load,
                &mut RoundRobin::new(),
                &mut discretized,
            )
            .unwrap()
            .lifetime_steps()
            .expect("paper loads exhaust the KiBaM batteries");
            // The ideal system may outlast the (truncated) load entirely.
            let ideal_lifetime = ideal_lifetime.unwrap_or(u64::MAX);
            assert!(
                ideal_lifetime >= kibam_lifetime,
                "{load} ({}x): ideal {ideal_lifetime} vs kibam {kibam_lifetime}",
                config.battery_count()
            );
            assert_eq!(ideal.backend_name(), "ideal");
        }
    }
}
