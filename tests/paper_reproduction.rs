//! Cross-crate integration tests asserting the *shape* of the paper's
//! results: Tables 3–5 and the qualitative claims of Section 6.

use battery_sched::optimal::OptimalScheduler;
use battery_sched::policy::{BestAvailable, RoundRobin, SchedulingPolicy, Sequential};
use battery_sched::report::{table5_row, validation_row};
use battery_sched::system::{simulate_policy, SystemConfig};
use dkibam::Discretization;
use kibam::BatteryParams;
use workload::paper_loads::TestLoad;

/// Table 3: every deterministic load reproduces the paper's analytical B1
/// lifetime to 0.02 min, and the discretized model stays within ~1–2 %.
#[test]
fn table3_reproduces_for_b1() {
    let params = BatteryParams::itsy_b1();
    let disc = Discretization::paper_default();
    for load in TestLoad::all() {
        let row = validation_row(load, &params, &disc).unwrap();
        if !load.is_random() {
            assert!(
                (row.analytic_minutes - load.paper_lifetime_b1()).abs() < 0.02,
                "{load}: analytic {:.3} vs paper {:.3}",
                row.analytic_minutes,
                load.paper_lifetime_b1()
            );
        }
        assert!(row.difference_percent.abs() < 2.5, "{load}: {:.2}%", row.difference_percent);
    }
}

/// Table 4: same for battery B2.
#[test]
fn table4_reproduces_for_b2() {
    let params = BatteryParams::itsy_b2();
    let disc = Discretization::paper_default();
    for load in TestLoad::all() {
        let row = validation_row(load, &params, &disc).unwrap();
        if !load.is_random() {
            assert!(
                (row.analytic_minutes - load.paper_lifetime_b2()).abs() < 0.02,
                "{load}: analytic {:.3} vs paper {:.3}",
                row.analytic_minutes,
                load.paper_lifetime_b2()
            );
        }
        assert!(row.difference_percent.abs() < 2.5, "{load}: {:.2}%", row.difference_percent);
    }
}

/// Table 5 (deterministic columns): the sequential, round-robin and
/// best-of-two lifetimes of every non-random load are within a few percent
/// of the published values.
#[test]
fn table5_deterministic_columns_match_paper() {
    let config = SystemConfig::paper_two_b1();
    for load in TestLoad::all() {
        if load.is_random() {
            continue;
        }
        let row = table5_row(load, &config, None).unwrap();
        let (paper_seq, paper_rr, paper_best, _) = load.paper_table5();
        for (ours, paper, name) in [
            (row.sequential_minutes, paper_seq, "sequential"),
            (row.round_robin_minutes, paper_rr, "round robin"),
            (row.best_of_two_minutes, paper_best, "best of two"),
        ] {
            let relative = (ours - paper).abs() / paper;
            assert!(
                relative < 0.04,
                "{load} {name}: ours {ours:.2} vs paper {paper:.2} ({relative:.3} rel)"
            );
        }
    }
}

/// Section 6, qualitative claims: sequential is always worst; round robin
/// and best-of-two coincide except on alternating/random loads, where
/// best-of-two wins clearly.
#[test]
fn section6_policy_ordering_claims_hold() {
    let config = SystemConfig::paper_two_b1();
    for load in TestLoad::all() {
        let run = |policy: &mut dyn SchedulingPolicy| {
            simulate_policy(&config, &load.profile(), policy).unwrap().lifetime_minutes().unwrap()
        };
        let seq = run(&mut Sequential::new());
        let rr = run(&mut RoundRobin::new());
        let best = run(&mut BestAvailable::new());
        assert!(seq <= rr + 0.03, "{load}: sequential must be worst");
        // Best-of-two is a greedy heuristic: on the paper's deterministic
        // loads it never loses to round robin; on arbitrary random loads it
        // can fall marginally short (a couple of time steps), so allow that.
        let slack = if load.is_random() { 0.05 } else { 1e-9 };
        assert!(best + slack >= rr, "{load}: best-of-two never loses to round robin");
        if matches!(load, TestLoad::IlsAlt) {
            assert!(best > rr * 1.2, "{load}: best-of-two should win clearly (27% in the paper)");
        }
    }
}

/// Table 5 (optimal column, coarse grid): the optimal schedule dominates the
/// deterministic ones and shows a clear gain on the alternating loads.
#[test]
fn optimal_schedule_dominates_on_coarse_grid() {
    let config = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2).unwrap();
    let scheduler = OptimalScheduler::new();
    for load in [TestLoad::Cl500, TestLoad::ClAlt, TestLoad::IlsAlt] {
        let row = table5_row(load, &config, Some(&scheduler)).unwrap();
        let optimal = row.optimal_minutes.unwrap();
        assert!(optimal + 1e-9 >= row.best_of_two_minutes, "{load}: optimal >= best-of-two");
        assert!(optimal + 1e-9 >= row.round_robin_minutes, "{load}: optimal >= round robin");
    }
    let alt = table5_row(TestLoad::ClAlt, &config, Some(&scheduler)).unwrap();
    assert!(
        alt.optimal_minutes.unwrap() > alt.round_robin_minutes * 1.02,
        "CL alt: the optimal schedule improves on round robin (6.2% in the paper)"
    );
}

/// Section 6: with the small B1 batteries roughly 70 % of the energy is left
/// behind on ILs alt; a ten-fold larger battery strands far less.
#[test]
fn residual_charge_shrinks_with_capacity() {
    let small = SystemConfig::paper_two_b1();
    let outcome_small =
        simulate_policy(&small, &TestLoad::IlsAlt.profile(), &mut BestAvailable::new()).unwrap();
    let fraction_small = outcome_small.residual_charge() / (2.0 * 5.5);
    assert!(fraction_small > 0.5, "small batteries strand most of their charge");

    let big_params = BatteryParams::itsy_b1().with_capacity(55.0).unwrap();
    let big = SystemConfig::new(big_params, Discretization::paper_default(), 2).unwrap();
    let outcome_big =
        simulate_policy(&big, &TestLoad::IlsAlt.profile(), &mut BestAvailable::new()).unwrap();
    let fraction_big = outcome_big.residual_charge() / (2.0 * 55.0);
    assert!(
        fraction_big < 0.12,
        "ten-fold capacity should strand less than ~10% (got {fraction_big:.3})"
    );
    assert!(fraction_big < fraction_small);
}

/// Figure 6 ingredients: the sampled trace shows recovery (available charge
/// rising while a battery rests) and the optimal schedule leaves less charge
/// behind than best-of-two.
#[test]
fn figure6_traces_show_recovery_and_optimal_gain() {
    let config = SystemConfig::new(BatteryParams::itsy_b1(), Discretization::coarse(), 2)
        .unwrap()
        .with_sampling(2);
    let load = config.discretize(&TestLoad::IlsAlt.profile()).unwrap();
    let best = battery_sched::system::simulate_policy_on(&config, &load, &mut BestAvailable::new())
        .unwrap();
    // Recovery: some battery's available charge increases between samples.
    let mut recovery_seen = false;
    for pair in best.trace().points.windows(2) {
        for (before, after) in pair[0].charges.iter().zip(&pair[1].charges) {
            if after.available > before.available + 1e-9 {
                recovery_seen = true;
            }
        }
    }
    assert!(recovery_seen, "the trace must show the recovery effect");

    let optimal = OptimalScheduler::new().find_optimal_on(&config, &load).unwrap();
    assert!(
        config.disc().steps_to_minutes(optimal.lifetime_steps)
            >= best.lifetime_minutes().unwrap() - 1e-9,
        "the optimal schedule lives at least as long as best-of-two"
    );
}
