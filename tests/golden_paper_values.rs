//! Golden-value tests pinning the paper's published numbers through the new
//! `BatteryModel` trait path.
//!
//! Values come from the tables of *"Maximizing System Lifetime by Battery
//! Scheduling"* (Jongerden et al., DSN 2009), as recorded in
//! `workload::paper_loads`:
//!
//! * Table 3 — single B1 battery, analytical KiBaM (e.g. `CL 500`: 2.02 min,
//!   `ILs 500`: 4.30 min);
//! * Table 5 — 2 × B1 system (e.g. `ILs 500`: sequential 8.60, round robin
//!   10.48, best-of-two 10.48);
//! * the ~1–2 % agreement between the continuous and the discretized model
//!   that Tables 3 and 4 report.

use battery_sched::model::BatteryModel;
use battery_sched::policy::{BestAvailable, RoundRobin, SchedulingPolicy, Sequential};
use battery_sched::system::{simulate_policy_with, SystemConfig};
use kibam::lifetime::lifetime_for_segments;
use kibam::BatteryParams;
use workload::paper_loads::TestLoad;

fn lifetime_with<M: BatteryModel>(
    config: &SystemConfig,
    load: TestLoad,
    policy: &mut dyn SchedulingPolicy,
    model: &mut M,
) -> f64 {
    let discretized = config.discretize(&load.profile()).unwrap();
    simulate_policy_with(config, &discretized, policy, model)
        .unwrap()
        .lifetime_minutes()
        .expect("paper loads exhaust the batteries")
}

/// Table 3, analytical column: CL 500 on B1 gives 2.02 min (and the other
/// deterministic loads match their published values to 0.02 min).
#[test]
fn table3_analytic_golden_values() {
    let b1 = BatteryParams::itsy_b1();
    for (load, paper) in [
        (TestLoad::Cl500, 2.02),
        (TestLoad::Cl250, 4.53),
        (TestLoad::Ils500, 4.30),
        (TestLoad::Ill250, 21.86),
    ] {
        let lifetime = lifetime_for_segments(&b1, load.profile().segments()).unwrap().lifetime;
        assert!(
            (lifetime - paper).abs() < 0.02,
            "{load}: analytic {lifetime:.3} vs paper {paper:.3}"
        );
        assert!((load.paper_lifetime_b1() - paper).abs() < 1e-9);
    }
}

/// Table 5, ILs 500 row through the discretized trait backend:
/// sequential 8.60, round robin 10.48, best-of-two 10.48.
#[test]
fn table5_ils500_golden_values_discretized_backend() {
    let config = SystemConfig::paper_two_b1();
    let mut model = config.discretized_model();
    let seq = lifetime_with(&config, TestLoad::Ils500, &mut Sequential::new(), &mut model);
    let rr = lifetime_with(&config, TestLoad::Ils500, &mut RoundRobin::new(), &mut model);
    let best = lifetime_with(&config, TestLoad::Ils500, &mut BestAvailable::new(), &mut model);
    assert!((seq - 8.60).abs() < 0.15, "sequential {seq:.3} vs paper 8.60");
    assert!((rr - 10.48).abs() < 0.15, "round robin {rr:.3} vs paper 10.48");
    assert!((best - 10.48).abs() < 0.15, "best-of-two {best:.3} vs paper 10.48");
    assert!((rr - best).abs() < 1e-9, "round robin and best-of-two coincide on ILs 500");
}

/// Every non-random Table 5 row reproduces through the trait path within a
/// few percent of the published values.
#[test]
fn table5_all_deterministic_rows_through_trait_path() {
    let config = SystemConfig::paper_two_b1();
    let mut model = config.discretized_model();
    for load in TestLoad::all() {
        if load.is_random() {
            continue;
        }
        let (paper_seq, paper_rr, paper_best, _) = load.paper_table5();
        for (paper, policy) in [
            (paper_seq, &mut Sequential::new() as &mut dyn SchedulingPolicy),
            (paper_rr, &mut RoundRobin::new()),
            (paper_best, &mut BestAvailable::new()),
        ] {
            let ours = lifetime_with(&config, load, policy, &mut model);
            let relative = (ours - paper).abs() / paper;
            assert!(
                relative < 0.04,
                "{load} {}: ours {ours:.2} vs paper {paper:.2}",
                policy.name()
            );
        }
    }
}

/// Cross-backend agreement: the continuous and the discretized backend agree
/// on the system lifetime within the ~2 % tolerance the paper reports for
/// the single-battery validation (Tables 3 and 4), for every non-random
/// load and every deterministic policy.
#[test]
fn continuous_and_discretized_backends_agree() {
    let config = SystemConfig::paper_two_b1();
    let mut discrete = config.discretized_model();
    let mut continuous = config.continuous_model();
    for load in TestLoad::all() {
        if load.is_random() {
            continue;
        }
        let policies: [fn() -> Box<dyn SchedulingPolicy>; 3] = [
            || Box::new(Sequential::new()),
            || Box::new(RoundRobin::new()),
            || Box::new(BestAvailable::new()),
        ];
        for policy in policies {
            let d = lifetime_with(&config, load, policy().as_mut(), &mut discrete);
            let c = lifetime_with(&config, load, policy().as_mut(), &mut continuous);
            let relative = (d - c).abs() / c;
            assert!(
                relative < 0.03,
                "{load} {}: discretized {d:.3} vs continuous {c:.3} ({relative:.4} rel)",
                policy().name()
            );
        }
    }
}
